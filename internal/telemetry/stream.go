package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"
)

// Server streams telemetry records to TCP subscribers as JSON lines —
// the paper's §6 feedback path: NR-Scope runs as a service and pushes
// RAN capacity to application servers faster than half an RTT, without
// involving the (bottleneck) RAN.
//
// Server is the pre-bus direct sink; bus.TCPServer is its bus-managed
// successor, where each subscriber consumes from its own bounded queue
// instead of being written to inside Publish.
type Server struct {
	ln net.Listener

	mu           sync.Mutex
	subs         map[net.Conn]*bufio.Writer
	closed       bool
	writeTimeout time.Duration
	wg           sync.WaitGroup
}

// NewServer listens on addr (e.g. "127.0.0.1:0").
func NewServer(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	s := &Server{
		ln:           ln,
		subs:         make(map[net.Conn]*bufio.Writer),
		writeTimeout: 5 * time.Second,
	}
	s.wg.Add(1)
	go s.accept()
	return s, nil
}

// SetWriteTimeout bounds each subscriber write during Publish (default
// 5 s). A subscriber that stops reading — its socket buffers full — is
// disconnected after at most this long instead of stalling Publish
// forever.
func (s *Server) SetWriteTimeout(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d > 0 {
		s.writeTimeout = d
	}
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) accept() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.subs[conn] = bufio.NewWriter(conn)
		// Inc/Dec (not Set) keeps the process-wide gauge honest when
		// several Servers coexist: a Set from one would erase the others'
		// contribution and leak a stale count.
		met.subscribers.Inc()
		s.mu.Unlock()
	}
}

// Publish sends a record to every subscriber, dropping subscribers whose
// connections fail (slow consumers do not stall the pipeline).
func (s *Server) Publish(rec Record) {
	data, err := json.Marshal(rec)
	if err != nil {
		return
	}
	data = append(data, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	drop := func(conn net.Conn) {
		_ = conn.Close()
		delete(s.subs, conn)
		met.subscribersDrop.Inc()
		met.subscribers.Dec()
	}
	var backlog int64
	for conn, bw := range s.subs {
		// A subscriber that stopped reading fills its socket buffers and
		// would block this write forever; the deadline converts the stall
		// into a drop.
		if s.writeTimeout > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(s.writeTimeout))
		}
		if _, err := bw.Write(data); err != nil {
			drop(conn)
			continue
		}
		// Buffered bytes before the flush are the stream's momentary
		// backlog: how far this publish got ahead of the sockets.
		backlog += int64(bw.Buffered())
		if err := bw.Flush(); err != nil {
			drop(conn)
			continue
		}
		met.recordsPublished.Inc()
	}
	met.backlogBytes.Set(backlog)
}

// Subscribers reports the current subscriber count.
func (s *Server) Subscribers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}

// Close stops the server and disconnects subscribers. The gauge gives
// back exactly this server's live count, never its siblings'.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for conn := range s.subs {
		_ = conn.Close()
	}
	met.subscribers.Add(-int64(len(s.subs)))
	s.subs = map[net.Conn]*bufio.Writer{}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// Client subscribes to a telemetry server and decodes its stream.
type Client struct {
	conn net.Conn
	dec  *json.Decoder
}

// Dial connects to a telemetry server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	return &Client{conn: conn, dec: json.NewDecoder(bufio.NewReader(conn))}, nil
}

// Next blocks for the next record.
func (c *Client) Next() (Record, error) {
	var rec Record
	if err := c.dec.Decode(&rec); err != nil {
		return Record{}, err
	}
	return rec, nil
}

// Close disconnects.
func (c *Client) Close() error { return c.conn.Close() }
