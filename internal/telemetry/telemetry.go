// Package telemetry defines NR-Scope's output: per-DCI records, the
// sliding-window throughput estimator of §3.2.2, the fair-share spare
// capacity computation of §5.4.1, a JSONL log writer (the paper's log
// file in Fig. 4), and a TCP streaming service so application servers
// can consume the feed in real time (§6, congestion control use case).
package telemetry

import (
	"fmt"
	"time"

	"nrscope/internal/dci"
	"nrscope/internal/mcs"
	"nrscope/internal/phy"
)

// Record is one decoded DCI's telemetry — the row NR-Scope writes per
// transmission it observes.
type Record struct {
	SlotIdx  int     `json:"slot_idx"`
	SFN      int     `json:"sfn"`
	Slot     int     `json:"slot"`
	RNTI     uint16  `json:"rnti"`
	Downlink bool    `json:"downlink"`
	Format   string  `json:"dci"`
	TBS      int     `json:"tbs"`
	NumPRB   int     `json:"nof_prb"`
	REGs     int     `json:"nof_reg"`
	NRE      int     `json:"nof_re"`
	MCS      int     `json:"mcs"`
	Qm       int     `json:"qm"`
	R        float64 `json:"code_rate"`
	AggLevel int     `json:"agg_level"`
	StartCCE int     `json:"cce"`
	HARQID   int     `json:"harq_id"`
	NDI      uint8   `json:"ndi"`
	RV       int     `json:"rv"`
	IsRetx   bool    `json:"retx"`
	NewUE    bool    `json:"new_ue,omitempty"`
	Common   bool    `json:"common,omitempty"`
	// TMs is the record's slot time in milliseconds since capture
	// start, derived from the slot index and the cell's numerology at
	// publish time — the one timestamp history bins and external JSON
	// consumers agree on (Ref itself does not serialize).
	TMs float64     `json:"t_ms"`
	Ref phy.SlotRef `json:"-"`
}

// String renders the record in the srsRAN-log style of the paper's
// Appendix B DCI sample.
func (r Record) String() string {
	dir := "ul"
	if r.Downlink {
		dir = "dl"
	}
	return fmt.Sprintf("tti=%d.%d rnti=0x%04x dci=%s %s L=%d cce=%d f_alloc=%d_prb t_alloc=%d_reg mcs=%d ndi=%d rv=%d harq_id=%d tbs=%d retx=%v",
		r.SFN, r.Slot, r.RNTI, r.Format, dir, r.AggLevel, r.StartCCE, r.NumPRB, r.REGs, r.MCS, r.NDI, r.RV, r.HARQID, r.TBS, r.IsRetx)
}

// FromGrant builds a record from a translated grant.
func FromGrant(slotIdx int, ref phy.SlotRef, g dci.Grant, isRetx bool) Record {
	return Record{
		SlotIdx:  slotIdx,
		SFN:      ref.SFN,
		Slot:     ref.Slot,
		RNTI:     g.RNTI,
		Downlink: g.Downlink,
		Format:   g.Format.String(),
		TBS:      g.TBS,
		NumPRB:   g.NumPRB,
		REGs:     g.REGCount(),
		NRE:      g.NRE,
		MCS:      g.MCSIndex,
		Qm:       g.Qm,
		R:        g.R,
		HARQID:   g.HARQID,
		NDI:      g.NDI,
		RV:       g.RV,
		IsRetx:   isRetx,
		Ref:      ref,
	}
}

// WindowEstimator maintains per-UE sliding-window bitrates from TBS
// records (paper §3.2.2: "we record the TBS for every UE in each TTI,
// maintaining a sliding window to calculate the bit rate").
type WindowEstimator struct {
	tti         time.Duration
	windowSlots int
	flows       map[flowKey]*flowWindow
}

type flowKey struct {
	rnti     uint16
	downlink bool
}

type flowWindow struct {
	slots []int64 // ring buffer of bits per slot
	last  int     // last slot index written
	total int64
}

// NewWindowEstimator creates an estimator with the given window length.
func NewWindowEstimator(window time.Duration, tti time.Duration) *WindowEstimator {
	n := int(window / tti)
	if n < 1 {
		n = 1
	}
	return &WindowEstimator{tti: tti, windowSlots: n, flows: make(map[flowKey]*flowWindow)}
}

// WindowSlots returns the window length in TTIs.
func (w *WindowEstimator) WindowSlots() int { return w.windowSlots }

// Add feeds one record. Retransmissions do not add throughput (the
// same bits were counted at their first transmission). Records older
// than the window are dropped: their ring slot has already been
// drained, so crediting them to the position they alias would inflate
// the window with out-of-window bits.
func (w *WindowEstimator) Add(rec Record) {
	if rec.IsRetx {
		return
	}
	k := flowKey{rec.RNTI, rec.Downlink}
	f := w.flows[k]
	if f == nil {
		f = &flowWindow{slots: make([]int64, w.windowSlots)}
		w.flows[k] = f
	}
	f.advance(rec.SlotIdx, w.windowSlots)
	if rec.SlotIdx <= f.last-w.windowSlots {
		return // stale: the window has moved past this slot
	}
	f.slots[rec.SlotIdx%w.windowSlots] += int64(rec.TBS)
	f.total += int64(rec.TBS)
}

// advance zeroes ring entries between the last write and now.
func (f *flowWindow) advance(slotIdx, n int) {
	if slotIdx <= f.last {
		return
	}
	steps := slotIdx - f.last
	if steps > n {
		steps = n
	}
	for i := 1; i <= steps; i++ {
		pos := (f.last + i) % n
		f.total -= f.slots[pos]
		f.slots[pos] = 0
	}
	f.last = slotIdx
}

// Remove forgets a UE's flows in both directions — called when the UE
// ages out of tracking so the flow map cannot grow without bound under
// C-RNTI churn.
func (w *WindowEstimator) Remove(rnti uint16) {
	delete(w.flows, flowKey{rnti, true})
	delete(w.flows, flowKey{rnti, false})
}

// Bitrate returns the flow's current windowed bitrate in bits/second,
// evaluated at nowSlot.
func (w *WindowEstimator) Bitrate(rnti uint16, downlink bool, nowSlot int) float64 {
	f := w.flows[flowKey{rnti, downlink}]
	if f == nil {
		return 0
	}
	f.advance(nowSlot, w.windowSlots)
	return float64(f.total) / (float64(w.windowSlots) * w.tti.Seconds())
}

// Flows lists the tracked (rnti, downlink) pairs.
func (w *WindowEstimator) Flows() []struct {
	RNTI     uint16
	Downlink bool
} {
	out := make([]struct {
		RNTI     uint16
		Downlink bool
	}, 0, len(w.flows))
	for k := range w.flows {
		out = append(out, struct {
			RNTI     uint16
			Downlink bool
		}{k.rnti, k.downlink})
	}
	return out
}

// SpareCapacity implements the paper's §5.4.1 fair-share estimate: the
// REs the cell left unused in a TTI are split evenly across the active
// UEs and re-rated at each UE's own modulation and coding rate, giving
// a per-UE spare bitrate (Fig. 14).
type SpareCapacity struct {
	// TotalREs is the data-region RE budget of the TTI.
	TotalREs int
	// UsedREs is the sum of allocated effective REs.
	UsedREs int
	// PerUE maps each active UE to its fair share of spare bits in the
	// TTI (already scaled by its MCS).
	PerUE map[uint16]float64
	// ShareREs is the spare REs each UE was assigned, rounded down (the
	// integer view of ShareREsExact, kept for display).
	ShareREs int
	// ShareREsExact is the exact fractional per-UE share. PerUE is
	// rated from this, so a spare smaller than the UE count still
	// yields nonzero per-UE capacity instead of rounding to nothing.
	ShareREsExact float64
}

// ComputeSpare runs the fair-share split for one TTI. entries maps each
// active UE to its current MCS entry and layer count.
type UELinkState struct {
	Entry  mcs.Entry
	Layers int
}

// ComputeSpare splits (totalREs - usedREs) evenly and rates each share.
func ComputeSpare(totalREs, usedREs int, ues map[uint16]UELinkState) SpareCapacity {
	sc := SpareCapacity{TotalREs: totalREs, UsedREs: usedREs, PerUE: make(map[uint16]float64, len(ues))}
	spare := totalREs - usedREs
	if spare < 0 {
		spare = 0
	}
	if len(ues) == 0 {
		return sc
	}
	share := float64(spare) / float64(len(ues))
	sc.ShareREs = spare / len(ues)
	sc.ShareREsExact = share
	for rnti, st := range ues {
		layers := st.Layers
		if layers < 1 {
			layers = 1
		}
		sc.PerUE[rnti] = mcs.SpareCapacityBitsExact(share, st.Entry, layers)
	}
	return sc
}
