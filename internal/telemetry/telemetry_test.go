package telemetry

import (
	"bytes"
	"math"
	"testing"
	"time"

	"nrscope/internal/dci"
	"nrscope/internal/mcs"
	"nrscope/internal/phy"
)

const tti = 500 * time.Microsecond

func rec(slot int, rnti uint16, tbs int, retx bool) Record {
	return Record{SlotIdx: slot, RNTI: rnti, Downlink: true, TBS: tbs, IsRetx: retx}
}

func TestWindowEstimatorSteadyRate(t *testing.T) {
	w := NewWindowEstimator(100*time.Millisecond, tti) // 200 slots
	// 5000 bits every slot = 10 Mbit/s at 0.5 ms TTI.
	for s := 0; s < 400; s++ {
		w.Add(rec(s, 1, 5000, false))
	}
	got := w.Bitrate(1, true, 400)
	want := 5000.0 / tti.Seconds()
	if math.Abs(got-want)/want > 0.02 {
		t.Errorf("bitrate %.0f, want %.0f", got, want)
	}
}

func TestWindowEstimatorExcludesRetransmissions(t *testing.T) {
	w := NewWindowEstimator(10*time.Millisecond, tti)
	w.Add(rec(0, 1, 8000, false))
	w.Add(rec(1, 1, 8000, true)) // retx must not double count
	a := w.Bitrate(1, true, 2)
	want := 8000 / (float64(w.WindowSlots()) * tti.Seconds())
	if math.Abs(a-want)/want > 0.01 {
		t.Errorf("bitrate %.0f counts retransmissions (want %.0f)", a, want)
	}
}

func TestWindowEstimatorDecay(t *testing.T) {
	w := NewWindowEstimator(10*time.Millisecond, tti) // 20 slots
	w.Add(rec(0, 1, 10000, false))
	if w.Bitrate(1, true, 5) == 0 {
		t.Fatal("rate zero right after traffic")
	}
	if got := w.Bitrate(1, true, 100); got != 0 {
		t.Errorf("rate %.0f after window drained, want 0", got)
	}
}

func TestWindowEstimatorSeparatesFlows(t *testing.T) {
	w := NewWindowEstimator(10*time.Millisecond, tti)
	w.Add(rec(0, 1, 1000, false))
	w.Add(Record{SlotIdx: 0, RNTI: 1, Downlink: false, TBS: 9000})
	dl := w.Bitrate(1, true, 1)
	ul := w.Bitrate(1, false, 1)
	if dl == 0 || ul == 0 || dl == ul {
		t.Errorf("flows not separated: dl=%.0f ul=%.0f", dl, ul)
	}
	if w.Bitrate(2, true, 1) != 0 {
		t.Error("unknown UE has nonzero rate")
	}
	if len(w.Flows()) != 2 {
		t.Errorf("Flows = %d, want 2", len(w.Flows()))
	}
}

// TestWindowEstimatorDropsStaleRecords: a record whose slot has already
// left the window must be dropped, not credited to the ring position it
// aliases — the aliased slot is still inside the window, so the stale
// bits used to inflate the reported bitrate.
func TestWindowEstimatorDropsStaleRecords(t *testing.T) {
	w := NewWindowEstimator(10*time.Millisecond, tti) // 20 slots
	w.Add(rec(100, 1, 5000, false))
	// Slot 50 is 50 slots behind: far outside the 20-slot window. Its
	// ring position aliases slot 90, which IS in the window.
	w.Add(rec(50, 1, 7000, false))
	got := w.Bitrate(1, true, 100)
	want := 5000 / (float64(w.WindowSlots()) * tti.Seconds())
	if math.Abs(got-want)/want > 0.01 {
		t.Errorf("bitrate %.0f counts a stale record (want %.0f)", got, want)
	}
	// Once the window drains, the total must return to exactly zero —
	// no phantom bits left behind.
	if got := w.Bitrate(1, true, 300); got != 0 {
		t.Errorf("bitrate %.0f after drain, want 0", got)
	}
}

// TestWindowEstimatorAcceptsLateInWindow: a late record whose slot is
// still inside the window is real traffic and must count.
func TestWindowEstimatorAcceptsLateInWindow(t *testing.T) {
	w := NewWindowEstimator(10*time.Millisecond, tti) // 20 slots
	w.Add(rec(100, 1, 5000, false))
	w.Add(rec(95, 1, 3000, false)) // 5 slots late: retained
	got := w.Bitrate(1, true, 100)
	want := 8000 / (float64(w.WindowSlots()) * tti.Seconds())
	if math.Abs(got-want)/want > 0.01 {
		t.Errorf("bitrate %.0f, want %.0f with the late in-window record", got, want)
	}
}

func TestComputeSpare(t *testing.T) {
	hi, _ := mcs.TableQAM256.Lookup(27)
	lo, _ := mcs.TableQAM256.Lookup(5)
	ues := map[uint16]UELinkState{
		1: {Entry: hi, Layers: 1},
		2: {Entry: lo, Layers: 1},
	}
	sc := ComputeSpare(1000, 400, ues)
	if sc.ShareREs != 300 {
		t.Errorf("ShareREs = %d, want 300", sc.ShareREs)
	}
	// Same spare REs, different bitrates (paper Fig. 14a).
	if sc.PerUE[1] <= sc.PerUE[2] {
		t.Errorf("high-MCS UE spare %.0f not above low-MCS %.0f", sc.PerUE[1], sc.PerUE[2])
	}
}

// TestComputeSpareSmallSpare: a spare smaller than the UE count used to
// integer-divide to a zero share, reporting no spare capacity at all;
// the share is fractional now and the remainder is never discarded.
func TestComputeSpareSmallSpare(t *testing.T) {
	e, _ := mcs.TableQAM64.Lookup(10)
	ues := map[uint16]UELinkState{
		1: {Entry: e, Layers: 1},
		2: {Entry: e, Layers: 1},
		3: {Entry: e, Layers: 1},
		4: {Entry: e, Layers: 1},
	}
	sc := ComputeSpare(103, 100, ues) // spare 3 REs across 4 UEs
	if sc.ShareREsExact != 0.75 {
		t.Errorf("ShareREsExact = %v, want 0.75", sc.ShareREsExact)
	}
	for rnti, bits := range sc.PerUE {
		if bits <= 0 {
			t.Errorf("ue %d spare = %v, want > 0 for a 0.75-RE share", rnti, bits)
		}
	}
	// The shares must re-assemble the whole spare: nothing discarded.
	want := mcs.SpareCapacityBits(3, e, 1)
	var got float64
	for _, bits := range sc.PerUE {
		got += bits
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("summed spare %v, want %v (remainder discarded)", got, want)
	}
}

func TestComputeSpareEdgeCases(t *testing.T) {
	sc := ComputeSpare(100, 150, map[uint16]UELinkState{})
	if len(sc.PerUE) != 0 || sc.ShareREs != 0 {
		t.Error("empty-UE spare not empty")
	}
	e, _ := mcs.TableQAM64.Lookup(10)
	sc = ComputeSpare(100, 150, map[uint16]UELinkState{1: {Entry: e, Layers: 1}})
	if sc.PerUE[1] != 0 {
		t.Error("overallocated TTI produced positive spare")
	}
}

func TestFromGrant(t *testing.T) {
	cfg := dci.DefaultConfig(51)
	riv, _ := phy.EncodeRIV(51, 3, 7)
	d := dci.DCI{Format: dci.Format11, FreqAlloc: riv, MCS: 20, HARQID: 4, NDI: 1}
	g, err := dci.ToGrant(d, 0x4601, cfg, dci.DefaultLinkConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := FromGrant(77, phy.SlotRef{SFN: 3, Slot: 17}, g, true)
	if r.RNTI != 0x4601 || !r.Downlink || r.TBS != g.TBS || !r.IsRetx {
		t.Errorf("record fields wrong: %+v", r)
	}
	if r.REGs != 7*g.Time.NumSymbols {
		t.Errorf("REGs = %d", r.REGs)
	}
	if r.SFN != 3 || r.Slot != 17 || r.SlotIdx != 77 {
		t.Error("timing fields wrong")
	}
}

func TestRecordString(t *testing.T) {
	r := Record{SFN: 52, Slot: 2, RNTI: 0x4296, Format: "1_1", Downlink: true,
		AggLevel: 1, StartCCE: 7, NumPRB: 3, REGs: 36, MCS: 27, HARQID: 11, TBS: 3240}
	s := r.String()
	for _, want := range []string{"rnti=0x4296", "dci=1_1", "mcs=27", "harq_id=11", "tbs=3240", "tti=52.2"} {
		if !containsStr(s, want) {
			t.Errorf("record string %q missing %q", s, want)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestWriterReadAllRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 10; i++ {
		if err := w.Write(rec(i, uint16(i), 1000*i, i%2 == 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 10 {
		t.Errorf("Count = %d", w.Count())
	}
	back, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 10 {
		t.Fatalf("read %d records", len(back))
	}
	for i, r := range back {
		if r.SlotIdx != i || r.TBS != 1000*i {
			t.Errorf("record %d mismatch: %+v", i, r)
		}
	}
}

func TestServerClientStreaming(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Wait for the subscription to register.
	deadline := time.Now().Add(2 * time.Second)
	for s.Subscribers() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.Subscribers() != 1 {
		t.Fatal("subscriber never registered")
	}
	want := rec(42, 0x4601, 12345, false)
	s.Publish(want)
	got, err := c.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got.SlotIdx != 42 || got.RNTI != 0x4601 || got.TBS != 12345 {
		t.Errorf("streamed record mismatch: %+v", got)
	}
}

func TestServerDropsDeadSubscribers(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.Subscribers() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	_ = c.Close()
	// Publishing into the closed connection must eventually drop it.
	for i := 0; i < 100 && s.Subscribers() > 0; i++ {
		s.Publish(rec(i, 1, 100, false))
		time.Sleep(time.Millisecond)
	}
	if s.Subscribers() != 0 {
		t.Error("dead subscriber never dropped")
	}
}
