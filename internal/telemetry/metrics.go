package telemetry

import "nrscope/internal/obs"

// met is the telemetry sink instrumentation: how many samples left the
// process through each sink (log writer, TCP stream) and how far the
// stream is backed up.
var met = struct {
	recordsWritten   *obs.Counter
	recordsPublished *obs.Counter
	subscribers      *obs.Gauge
	subscribersDrop  *obs.Counter
	backlogBytes     *obs.Gauge
}{
	recordsWritten: obs.Default.Counter("nrscope_telemetry_records_written_total",
		"telemetry records appended to the JSONL log writer"),
	recordsPublished: obs.Default.Counter("nrscope_telemetry_records_published_total",
		"record deliveries over the TCP stream (records x subscribers)"),
	subscribers: obs.Default.Gauge("nrscope_telemetry_subscribers",
		"currently connected TCP stream subscribers"),
	subscribersDrop: obs.Default.Counter("nrscope_telemetry_subscribers_dropped_total",
		"subscribers disconnected for failed or stalled writes"),
	backlogBytes: obs.Default.Gauge("nrscope_telemetry_stream_backlog_bytes",
		"bytes buffered towards subscribers at the last publish"),
}
