package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Writer streams records as JSON lines — the "log file" sink of the
// paper's Fig. 4 pipeline.
type Writer struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	n   int
}

// NewWriter wraps w in a buffered JSONL telemetry writer.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{bw: bw, enc: json.NewEncoder(bw)}
}

// Write appends one record. Safe for concurrent use.
func (w *Writer) Write(rec Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.enc.Encode(rec); err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	w.n++
	met.recordsWritten.Inc()
	return nil
}

// Count reports how many records were written.
func (w *Writer) Count() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Flush drains the buffer to the underlying writer.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bw.Flush()
}

// ReadAll parses a JSONL telemetry stream back into records.
func ReadAll(r io.Reader) ([]Record, error) {
	dec := json.NewDecoder(r)
	var out []Record
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("telemetry: %w", err)
		}
		out = append(out, rec)
	}
}
