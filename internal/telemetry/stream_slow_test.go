package telemetry

import (
	"net"
	"testing"
	"time"

	"nrscope/internal/obs"
)

// waitSubscribers polls until the server sees n subscribers.
func waitSubscribers(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for s.Subscribers() != n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.Subscribers() != n {
		t.Fatalf("subscribers = %d, want %d", s.Subscribers(), n)
	}
}

// TestServerSlowConsumerDoesNotStall pins the pre-bus slow-consumer
// contract: a subscriber that stops reading (socket buffers fill, every
// write would block) must neither stall Publish nor deadlock Close —
// the write deadline converts the stall into a counted drop.
func TestServerSlowConsumerDoesNotStall(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.SetWriteTimeout(200 * time.Millisecond)

	// A raw connection that never reads: the kernel buffers fill and
	// then writes block until the deadline.
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	waitSubscribers(t, s, 1)

	done := make(chan struct{})
	go func() {
		defer close(done)
		// Enough volume to overwhelm both socket buffers (~each record
		// is ~230 bytes on the wire).
		for i := 0; i < 50000 && s.Subscribers() > 0; i++ {
			s.Publish(rec(i, 1, 1<<20, false))
		}
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("Publish stalled on a non-reading subscriber")
	}
	if s.Subscribers() != 0 {
		t.Error("non-reading subscriber was never dropped")
	}

	closed := make(chan struct{})
	go func() {
		_ = s.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close deadlocked after a slow consumer")
	}
}

// TestSubscriberGaugeAccounting verifies the subscriber gauge cannot
// leak a stale count: with two servers alive, a drop on one and a Close
// on the other must each give back exactly their own contribution.
func TestSubscriberGaugeAccounting(t *testing.T) {
	gauge := func() float64 { return obs.Snapshot()["nrscope_telemetry_subscribers"] }
	base := gauge()

	a, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	ca, err := Dial(a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	cb, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cb.Close()
	waitSubscribers(t, a, 1)
	waitSubscribers(t, b, 1)
	if got := gauge() - base; got != 2 {
		t.Fatalf("gauge delta = %v after two subscriptions, want 2", got)
	}

	// Drop a's subscriber through the Publish failure path; b's
	// contribution must survive (a Set-based gauge would erase it).
	_ = ca.Close()
	for i := 0; i < 200 && a.Subscribers() > 0; i++ {
		a.Publish(rec(i, 1, 100, false))
		time.Sleep(time.Millisecond)
	}
	if a.Subscribers() != 0 {
		t.Fatal("dead subscriber never dropped")
	}
	if got := gauge() - base; got != 1 {
		t.Errorf("gauge delta = %v after one drop, want 1", got)
	}

	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if got := gauge() - base; got != 0 {
		t.Errorf("gauge delta = %v after closing both, want 0", got)
	}
}
