// Package mcs implements the modulation-and-coding-scheme tables and the
// transport block size (TBS) computation of TS 38.214 §5.1.3, which the
// paper restates in Appendix A. The TBS is the quantity NR-Scope extracts
// from every decoded DCI: it is exactly how many bits the gNB delivered
// to a UE in that TTI, and summing it in a sliding window yields the
// per-UE throughput of Figs. 9, 14 and 16.
package mcs

import (
	"fmt"
	"math"

	"nrscope/internal/modulation"
)

// Table selects which MCS index table the cell configured for a UE
// (carried in the RRC Setup's PDSCH config; paper Appendix B shows
// mcs_table=256qam).
type Table int

// MCS tables of TS 38.214 §5.1.3.1.
const (
	TableQAM64  Table = iota // Table 5.1.3.1-1
	TableQAM256              // Table 5.1.3.1-2
)

// String implements fmt.Stringer using the srsRAN log spelling.
func (t Table) String() string {
	if t == TableQAM256 {
		return "256qam"
	}
	return "64qam"
}

// Entry is one MCS table row: modulation order Qm and code rate R
// expressed as R*1024 (the standard's fixed-point form).
type Entry struct {
	Qm         int
	RTimes1024 float64
}

// R returns the code rate as a float.
func (e Entry) R() float64 { return e.RTimes1024 / 1024 }

// Scheme returns the modulation scheme for the entry.
func (e Entry) Scheme() modulation.Scheme {
	s, err := modulation.FromQm(e.Qm)
	if err != nil {
		panic(err)
	}
	return s
}

// tableQAM64 is TS 38.214 Table 5.1.3.1-1 (indices 0..28).
var tableQAM64 = []Entry{
	{2, 120}, {2, 157}, {2, 193}, {2, 251}, {2, 308}, {2, 379}, {2, 449},
	{2, 526}, {2, 602}, {2, 679}, {4, 340}, {4, 378}, {4, 434}, {4, 490},
	{4, 553}, {4, 616}, {4, 658}, {6, 438}, {6, 466}, {6, 517}, {6, 567},
	{6, 616}, {6, 666}, {6, 719}, {6, 772}, {6, 822}, {6, 873}, {6, 910},
	{6, 948},
}

// tableQAM256 is TS 38.214 Table 5.1.3.1-2 (indices 0..27).
var tableQAM256 = []Entry{
	{2, 120}, {2, 193}, {2, 308}, {2, 449}, {2, 602}, {4, 378}, {4, 434},
	{4, 490}, {4, 553}, {4, 616}, {4, 658}, {6, 466}, {6, 517}, {6, 567},
	{6, 616}, {6, 666}, {6, 719}, {6, 772}, {6, 822}, {6, 873}, {8, 682.5},
	{8, 711}, {8, 754}, {8, 797}, {8, 841}, {8, 885}, {8, 916.5}, {8, 948},
}

// MaxIndex returns the largest valid MCS index for the table.
func (t Table) MaxIndex() int {
	if t == TableQAM256 {
		return len(tableQAM256) - 1
	}
	return len(tableQAM64) - 1
}

// Lookup resolves an MCS index against the table.
func (t Table) Lookup(index int) (Entry, error) {
	var tab []Entry
	if t == TableQAM256 {
		tab = tableQAM256
	} else {
		tab = tableQAM64
	}
	if index < 0 || index >= len(tab) {
		return Entry{}, fmt.Errorf("mcs: index %d out of range for table %v", index, t)
	}
	return tab[index], nil
}

// tbsTable is TS 38.214 Table 5.1.3.2-2: every legal TBS value not
// exceeding 3824 bits.
var tbsTable = []int{
	24, 32, 40, 48, 56, 64, 72, 80, 88, 96, 104, 112, 120, 128, 136, 144,
	152, 160, 168, 176, 184, 192, 208, 224, 240, 256, 272, 288, 304, 320,
	336, 352, 368, 384, 408, 432, 456, 480, 504, 528, 552, 576, 608, 640,
	672, 704, 736, 768, 808, 848, 888, 928, 984, 1032, 1064, 1128, 1160,
	1192, 1224, 1256, 1288, 1320, 1352, 1416, 1480, 1544, 1608, 1672,
	1736, 1800, 1864, 1928, 2024, 2088, 2152, 2216, 2280, 2408, 2472,
	2536, 2600, 2664, 2728, 2792, 2856, 2976, 3104, 3240, 3368, 3496,
	3624, 3752, 3824,
}

// TBSParams collects everything the TBS computation needs. NR-Scope
// learns NSymbols and NPRB from the DCI grant; DMRSPerPRB, Overhead,
// Layers and the table come from the RRC Setup (paper §3.2.2 and
// Appendix A).
type TBSParams struct {
	NPRB       int   // allocated PRBs (f_alloc)
	NSymbols   int   // allocated OFDM symbols (t_alloc)
	DMRSPerPRB int   // REs of DMRS per PRB in the allocation
	Overhead   int   // xOverhead from pdsch-ServingCellConfig (0, 6, 12, 18)
	Layers     int   // maxMIMO-Layers (v)
	MCSIndex   int   // from the DCI
	Table      Table // from RRC
}

// Validate checks parameter sanity.
func (p TBSParams) Validate() error {
	if p.NPRB < 1 {
		return fmt.Errorf("mcs: NPRB = %d", p.NPRB)
	}
	if p.NSymbols < 1 || p.NSymbols > 14 {
		return fmt.Errorf("mcs: NSymbols = %d", p.NSymbols)
	}
	if p.DMRSPerPRB < 0 || p.Overhead < 0 {
		return fmt.Errorf("mcs: negative DMRS/overhead")
	}
	if p.Layers < 1 || p.Layers > 4 {
		return fmt.Errorf("mcs: layers = %d not in [1,4]", p.Layers)
	}
	return nil
}

// Result carries the TBS computation outputs, mirroring the fields of the
// paper's Appendix B grant (tbs, R, mod, nof_re, nof_bits).
type Result struct {
	TBS    int     // transport block size in bits
	NRE    int     // effective REs allocated (capped at 156/PRB)
	Qm     int     // modulation order
	R      float64 // code rate
	NBits  int     // physical channel bits = NRE * Qm * layers
	Ninfo  float64 // intermediate information payload estimate
	Scheme modulation.Scheme
}

// Compute runs the TS 38.214 §5.1.3.2 TBS determination (paper Appendix A).
func Compute(p TBSParams) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	entry, err := p.Table.Lookup(p.MCSIndex)
	if err != nil {
		return Result{}, err
	}
	// Step 1: effective REs.
	nREPrime := phySubcarriersPerPRB*p.NSymbols - p.DMRSPerPRB - p.Overhead
	if nREPrime < 0 {
		nREPrime = 0
	}
	nRE := min(156, nREPrime) * p.NPRB
	if nRE == 0 {
		return Result{}, fmt.Errorf("mcs: allocation has zero usable REs")
	}
	r := entry.R()
	qm := entry.Qm
	v := p.Layers
	// Step 2: Ninfo.
	ninfo := float64(nRE) * r * float64(qm) * float64(v)

	res := Result{
		NRE:    nRE,
		Qm:     qm,
		R:      r,
		NBits:  nRE * qm * v,
		Ninfo:  ninfo,
		Scheme: entry.Scheme(),
	}

	// Step 3: quantise to the TBS. Note: the paper's Appendix A restates
	// this with the two branch quantisers transposed; we follow TS 38.214
	// §5.1.3.2 directly, which reproduces the paper's own Appendix B
	// example (432 REs at MCS 27/256QAM -> TBS 3240).
	if ninfo <= 3824 {
		n := math.Max(3, math.Floor(math.Log2(ninfo))-6)
		step := math.Exp2(n)
		nInfoQ := math.Max(24, step*math.Floor(ninfo/step))
		// Smallest table TBS not less than N'info.
		for _, tbs := range tbsTable {
			if float64(tbs) >= nInfoQ {
				res.TBS = tbs
				return res, nil
			}
		}
		res.TBS = tbsTable[len(tbsTable)-1]
		return res, nil
	}
	n := math.Floor(math.Log2(ninfo-24)) - 5
	step := math.Exp2(n)
	nInfoQ := math.Max(3840, step*math.Round((ninfo-24)/step))
	switch {
	case r <= 0.25:
		c := math.Ceil((nInfoQ + 24) / 3816)
		res.TBS = int(8*c*math.Ceil((nInfoQ+24)/(8*c))) - 24
	case nInfoQ > 8424:
		c := math.Ceil((nInfoQ + 24) / 8424)
		res.TBS = int(8*c*math.Ceil((nInfoQ+24)/(8*c))) - 24
	default:
		res.TBS = int(8*math.Ceil((nInfoQ+24)/8)) - 24
	}
	return res, nil
}

// phySubcarriersPerPRB mirrors phy.SubcarriersPerPRB without importing the
// package (keeps mcs dependency-free below modulation).
const phySubcarriersPerPRB = 12

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// SpareCapacityBits estimates how many bits nSpareREs resource elements
// would carry for a UE at the given MCS entry and layer count — the
// paper's §5.4.1 fair-share spare capacity: the same spare REs translate
// to different bit rates for different UEs because their modulation and
// coding rates differ (Fig. 14a).
func SpareCapacityBits(nSpareREs int, e Entry, layers int) float64 {
	return SpareCapacityBitsExact(float64(nSpareREs), e, layers)
}

// SpareCapacityBitsExact is SpareCapacityBits for a fractional RE
// share — the fair-share split of §5.4.1 rarely divides evenly, and
// truncating the share to whole REs discards up to one RE per UE.
func SpareCapacityBitsExact(spareREs float64, e Entry, layers int) float64 {
	return spareREs * e.R() * float64(e.Qm) * float64(layers)
}

// IndexForEfficiency returns the highest MCS index in the table whose
// spectral efficiency (R·Qm) does not exceed eff. The gNB's link
// adaptation uses it to map a CQI-derived efficiency to an MCS.
func (t Table) IndexForEfficiency(eff float64) int {
	best := 0
	for i := 0; i <= t.MaxIndex(); i++ {
		e, _ := t.Lookup(i)
		if e.R()*float64(e.Qm) <= eff {
			best = i
		}
	}
	return best
}
