package mcs

import (
	"testing"
	"testing/quick"

	"nrscope/internal/modulation"
)

func TestTableLookup(t *testing.T) {
	e, err := TableQAM64.Lookup(0)
	if err != nil || e.Qm != 2 || e.RTimes1024 != 120 {
		t.Errorf("qam64[0] = %+v, %v", e, err)
	}
	e, err = TableQAM64.Lookup(28)
	if err != nil || e.Qm != 6 || e.RTimes1024 != 948 {
		t.Errorf("qam64[28] = %+v, %v", e, err)
	}
	e, err = TableQAM256.Lookup(27)
	if err != nil || e.Qm != 8 || e.RTimes1024 != 948 {
		t.Errorf("qam256[27] = %+v, %v", e, err)
	}
	if _, err := TableQAM64.Lookup(29); err == nil {
		t.Error("qam64[29] accepted")
	}
	if _, err := TableQAM256.Lookup(-1); err == nil {
		t.Error("negative index accepted")
	}
}

func TestTableMonotoneEfficiency(t *testing.T) {
	for _, tab := range []Table{TableQAM64, TableQAM256} {
		prev := 0.0
		for i := 0; i <= tab.MaxIndex(); i++ {
			e, err := tab.Lookup(i)
			if err != nil {
				t.Fatal(err)
			}
			eff := e.R() * float64(e.Qm)
			// The genuine 3GPP tables have a tiny dip at each Qm
			// transition (e.g. 64qam index 16->17); allow that.
			if eff <= prev-0.02 {
				t.Errorf("%v[%d]: efficiency %.3f not increasing (prev %.3f)", tab, i, eff, prev)
			}
			prev = eff
		}
	}
}

func TestTBSTableSorted(t *testing.T) {
	for i := 1; i < len(tbsTable); i++ {
		if tbsTable[i] <= tbsTable[i-1] {
			t.Fatalf("tbsTable not strictly increasing at %d", i)
		}
		if tbsTable[i]%8 != 0 {
			t.Errorf("tbsTable[%d] = %d not byte aligned", i, tbsTable[i])
		}
	}
	if tbsTable[len(tbsTable)-1] != 3824 {
		t.Errorf("last table TBS = %d, want 3824", tbsTable[len(tbsTable)-1])
	}
}

func TestComputePaperAppendixBExample(t *testing.T) {
	// Paper Appendix B: grant with nof_re=432, mcs=27, 256qam table
	// -> mod=256QAM, tbs=3240, R=0.926, nof_bits=3456.
	res, err := Compute(TBSParams{
		NPRB: 3, NSymbols: 12, DMRSPerPRB: 0, Overhead: 0,
		Layers: 1, MCSIndex: 27, Table: TableQAM256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NRE != 432 {
		t.Errorf("NRE = %d, want 432", res.NRE)
	}
	if res.TBS != 3240 {
		t.Errorf("TBS = %d, want 3240", res.TBS)
	}
	if res.NBits != 3456 {
		t.Errorf("NBits = %d, want 3456", res.NBits)
	}
	if res.Qm != 8 || res.Scheme != modulation.QAM256 {
		t.Errorf("Qm = %d scheme %v, want 8 / 256QAM", res.Qm, res.Scheme)
	}
	if res.R < 0.925 || res.R > 0.927 {
		t.Errorf("R = %.4f, want 0.926", res.R)
	}
}

func TestComputeRECap156(t *testing.T) {
	// N'RE is capped at 156 per PRB before scaling by nPRB.
	res, err := Compute(TBSParams{
		NPRB: 10, NSymbols: 14, DMRSPerPRB: 0, Overhead: 0,
		Layers: 1, MCSIndex: 10, Table: TableQAM64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NRE != 1560 {
		t.Errorf("NRE = %d, want 10*156", res.NRE)
	}
}

func TestComputeSmallAllocation(t *testing.T) {
	// 1 PRB, 2 symbols, 6 DMRS REs: tiny Ninfo must still give a legal TBS.
	res, err := Compute(TBSParams{
		NPRB: 1, NSymbols: 2, DMRSPerPRB: 6, Overhead: 0,
		Layers: 1, MCSIndex: 0, Table: TableQAM64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TBS < 24 {
		t.Errorf("TBS = %d below minimum", res.TBS)
	}
}

func TestComputeLargeLowRate(t *testing.T) {
	// Force the R <= 1/4 segmentation branch: big allocation at MCS 0.
	res, err := Compute(TBSParams{
		NPRB: 200, NSymbols: 12, DMRSPerPRB: 12, Overhead: 0,
		Layers: 4, MCSIndex: 0, Table: TableQAM64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TBS <= 3824 {
		t.Errorf("TBS = %d, expected > 3824", res.TBS)
	}
	if (res.TBS+24)%8 != 0 {
		t.Errorf("TBS+24 = %d not byte aligned", res.TBS+24)
	}
}

func TestComputeMonotoneInPRBs(t *testing.T) {
	prev := 0
	for nprb := 1; nprb <= 100; nprb++ {
		res, err := Compute(TBSParams{
			NPRB: nprb, NSymbols: 12, DMRSPerPRB: 12, Overhead: 0,
			Layers: 1, MCSIndex: 15, Table: TableQAM64,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.TBS < prev {
			t.Fatalf("TBS decreased at %d PRBs: %d < %d", nprb, res.TBS, prev)
		}
		prev = res.TBS
	}
}

func TestComputeMonotoneInMCS(t *testing.T) {
	for _, tab := range []Table{TableQAM64, TableQAM256} {
		prev := 0
		for idx := 0; idx <= tab.MaxIndex(); idx++ {
			res, err := Compute(TBSParams{
				NPRB: 20, NSymbols: 12, DMRSPerPRB: 12, Overhead: 0,
				Layers: 1, MCSIndex: idx, Table: tab,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.TBS < prev {
				t.Fatalf("%v: TBS decreased at MCS %d: %d < %d", tab, idx, res.TBS, prev)
			}
			prev = res.TBS
		}
	}
}

func TestComputeValidation(t *testing.T) {
	bad := []TBSParams{
		{NPRB: 0, NSymbols: 12, Layers: 1},
		{NPRB: 1, NSymbols: 0, Layers: 1},
		{NPRB: 1, NSymbols: 15, Layers: 1},
		{NPRB: 1, NSymbols: 12, Layers: 0},
		{NPRB: 1, NSymbols: 12, Layers: 5},
		{NPRB: 1, NSymbols: 12, Layers: 1, MCSIndex: 99},
	}
	for i, p := range bad {
		if _, err := Compute(p); err == nil {
			t.Errorf("case %d: bad params %+v accepted", i, p)
		}
	}
}

func TestComputeSmallTBSQuantisationProperty(t *testing.T) {
	// For any params landing in the <= 3824 branch, the TBS must be a
	// table value and at least N'info.
	f := func(nprbRaw, mcsRaw uint8) bool {
		nprb := 1 + int(nprbRaw%8)
		idx := int(mcsRaw) % 29
		res, err := Compute(TBSParams{
			NPRB: nprb, NSymbols: 12, DMRSPerPRB: 12, Overhead: 0,
			Layers: 1, MCSIndex: idx, Table: TableQAM64,
		})
		if err != nil {
			return false
		}
		if res.Ninfo > 3824 {
			return true // other branch, skip
		}
		for _, v := range tbsTable {
			if v == res.TBS {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIndexForEfficiency(t *testing.T) {
	if got := TableQAM64.IndexForEfficiency(100); got != 28 {
		t.Errorf("huge efficiency -> %d, want 28", got)
	}
	if got := TableQAM64.IndexForEfficiency(0.01); got != 0 {
		t.Errorf("tiny efficiency -> %d, want 0", got)
	}
	// Mid value: efficiency of index 10 (Qm=4, R=340/1024) = 1.328.
	got := TableQAM64.IndexForEfficiency(1.33)
	e, _ := TableQAM64.Lookup(got)
	if e.R()*float64(e.Qm) > 1.33 {
		t.Errorf("IndexForEfficiency returned too-aggressive MCS %d", got)
	}
}

func TestSpareCapacityBits(t *testing.T) {
	e, _ := TableQAM256.Lookup(27)
	lo, _ := TableQAM64.Lookup(0)
	high := SpareCapacityBits(100, e, 2)
	low := SpareCapacityBits(100, lo, 1)
	if high <= low {
		t.Errorf("spare bits at high MCS %.1f not greater than low MCS %.1f", high, low)
	}
	// Fig. 14a: same spare REs, different bit rates across UEs.
	if high == SpareCapacityBits(100, lo, 2) {
		t.Error("spare capacity insensitive to MCS")
	}
}

func TestTableString(t *testing.T) {
	if TableQAM64.String() != "64qam" || TableQAM256.String() != "256qam" {
		t.Error("table String() wrong")
	}
}

func BenchmarkCompute(b *testing.B) {
	p := TBSParams{NPRB: 51, NSymbols: 12, DMRSPerPRB: 12, Overhead: 0, Layers: 2, MCSIndex: 20, Table: TableQAM256}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(p); err != nil {
			b.Fatal(err)
		}
	}
}
