// Package dci models 5G NR Downlink Control Information (TS 38.212 §7.3):
// the four formats NR-Scope decodes (0_0 and 0_1 for uplink grants, 1_0
// and 1_1 for downlink grants), their size computation from the cell
// configuration, bit-exact packing/unpacking, and translation of a
// decoded DCI into the downlink/uplink grant the paper's Appendix B
// shows.
//
// A DCI payload is 30–80 bits (paper §3.2.1); its CRC is scrambled with
// the addressed UE's RNTI (bits.AttachDCICRC), which is why NR-Scope must
// track C-RNTIs before it can decode anything.
package dci

import (
	"fmt"

	"nrscope/internal/phy"
)

// Well-known RNTI values (TS 38.321 Table 7.1-1).
const (
	// SIRNTI addresses system information (SIB1) DCIs.
	SIRNTI uint16 = 0xFFFF
	// PagingRNTI addresses paging DCIs.
	PagingRNTI uint16 = 0xFFFE
	// MinCRNTI and MaxCRNTI bound the C-RNTI/TC-RNTI space a gNB assigns.
	MinCRNTI uint16 = 0x0001
	MaxCRNTI uint16 = 0xFFEF
)

// RARNTI computes the RA-RNTI addressing a random-access response from
// the slot in which the preamble was received (simplified TS 38.321
// §5.1.3: we fold the occasion into the slot index).
func RARNTI(slot int) uint16 {
	return uint16(1 + slot%0x3FFF)
}

// Format enumerates the DCI formats NR-Scope handles.
type Format int

// DCI formats (TS 38.212 §7.3.1).
const (
	Format00 Format = iota // uplink, fallback
	Format01               // uplink, non-fallback
	Format10               // downlink, fallback (SIB1, RAR, MSG4)
	Format11               // downlink, non-fallback (UE data)
)

// String implements fmt.Stringer with the 3GPP spelling.
func (f Format) String() string {
	switch f {
	case Format00:
		return "0_0"
	case Format01:
		return "0_1"
	case Format10:
		return "1_0"
	case Format11:
		return "1_1"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// Downlink reports whether the format schedules PDSCH (as opposed to PUSCH).
func (f Format) Downlink() bool { return f == Format10 || f == Format11 }

// Config carries the cell/BWP parameters that determine DCI field widths.
// NR-Scope assembles it from SIB1 (common config) and the RRC Setup
// (UE-dedicated config) — paper §3.1.
type Config struct {
	BWPPRBs       int // bandwidth part width; sets the RIV field width
	TimeAllocRows int // rows in the PDSCH/PUSCH time-allocation table
	MaxHARQ       int // HARQ processes (field is log2 width, up to 16)
}

// DefaultConfig mirrors the 20 MHz / 30 kHz cells of the evaluation.
func DefaultConfig(bwpPRBs int) Config {
	return Config{BWPPRBs: bwpPRBs, TimeAllocRows: len(phy.DefaultTimeAllocTable), MaxHARQ: 16}
}

func (c Config) timeAllocBits() int { return ceilLog2(c.TimeAllocRows) }
func (c Config) harqBits() int      { return ceilLog2(c.MaxHARQ) }

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.BWPPRBs < 1 {
		return fmt.Errorf("dci: BWPPRBs = %d", c.BWPPRBs)
	}
	if c.TimeAllocRows < 1 || c.TimeAllocRows > 16 {
		return fmt.Errorf("dci: TimeAllocRows = %d", c.TimeAllocRows)
	}
	if c.MaxHARQ < 1 || c.MaxHARQ > 16 {
		return fmt.Errorf("dci: MaxHARQ = %d", c.MaxHARQ)
	}
	return nil
}

// DCI is the decoded content of one downlink control information
// message. Which fields are meaningful depends on the Format; unused
// fields are zero. It mirrors the paper's Appendix B sample:
//
//	c-rnti=0x4296, dci=1_1, ss=ue, L=0, cce=7, f_alloc=0x33, t_alloc=0x0,
//	mcs=27, ndi=0, rv=0, harq_id=11, dai=2, tpc=1, harq_feedback=2,
//	ports=7, srs_request=0, dmrs_id=0
type DCI struct {
	Format Format

	FreqAlloc   uint32 // RIV over the BWP
	TimeAlloc   int    // row index into the time-allocation table
	VRBToPRB    int    // 1 bit (downlink formats)
	FreqHopping int    // 1 bit (uplink formats)
	MCS         int    // 5 bits
	NDI         uint8  // new-data indicator, 1 bit
	RV          int    // redundancy version, 2 bits
	HARQID      int    // HARQ process id
	DAI         int    // downlink assignment index, 2 bits
	TPC         int    // transmit power control, 2 bits
	PUCCHRes    int    // PUCCH resource indicator, 3 bits (DL formats)
	HARQTiming  int    // PDSCH-to-HARQ feedback timing, 3 bits (DL formats)
	Ports       int    // antenna ports, 4 bits (non-fallback formats)
	SRSRequest  int    // 2 bits (non-fallback formats)
	DMRSSeqInit int    // 1 bit (non-fallback formats)
}

// Validate checks field ranges against the configuration.
func (d DCI) Validate(c Config) error {
	if d.TimeAlloc < 0 || d.TimeAlloc >= c.TimeAllocRows {
		return fmt.Errorf("dci: time alloc row %d out of table (%d rows)", d.TimeAlloc, c.TimeAllocRows)
	}
	if d.MCS < 0 || d.MCS > 31 {
		return fmt.Errorf("dci: MCS %d out of 5-bit range", d.MCS)
	}
	if d.HARQID < 0 || d.HARQID >= c.MaxHARQ {
		return fmt.Errorf("dci: HARQ id %d out of range", d.HARQID)
	}
	if d.RV < 0 || d.RV > 3 {
		return fmt.Errorf("dci: RV %d out of range", d.RV)
	}
	return nil
}

func ceilLog2(n int) int {
	b := 0
	for 1<<uint(b) < n {
		b++
	}
	return b
}
