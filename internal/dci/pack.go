package dci

import (
	"fmt"

	"nrscope/internal/bits"
	"nrscope/internal/phy"
)

// Field layouts. Every format starts with the 1-bit format identifier
// (0 = uplink, 1 = downlink, TS 38.212 §7.3.1.1.1). The fallback pair
// (0_0, 1_0) is padded to a common size so a blind decoder can try both
// interpretations of the same candidate, as a real UE does; the
// non-fallback pair (0_1, 1_1) is likewise aligned.

// Size returns the payload size in bits of the format under the
// configuration (before the 24-bit CRC).
func Size(f Format, c Config) int {
	switch f {
	case Format10, Format00:
		return fallbackSize(c)
	case Format11:
		return rawSize11(c)
	case Format01:
		// Aligned up to 1_1 so both share one blind decode.
		return rawSize11(c)
	default:
		panic(fmt.Sprintf("dci: unknown format %d", int(f)))
	}
}

// rawSize10 is the natural (unpadded) 1_0 size.
func rawSize10(c Config) int {
	return 1 + // format id
		phy.RIVBits(c.BWPPRBs) +
		c.timeAllocBits() +
		1 + // VRB-to-PRB
		5 + // MCS
		1 + // NDI
		2 + // RV
		c.harqBits() +
		2 + // DAI
		2 + // TPC
		3 + // PUCCH resource
		3 // HARQ feedback timing
}

// rawSize00 is the natural (unpadded) 0_0 size.
func rawSize00(c Config) int {
	return 1 + // format id
		phy.RIVBits(c.BWPPRBs) +
		c.timeAllocBits() +
		1 + // frequency hopping
		5 + // MCS
		1 + // NDI
		2 + // RV
		c.harqBits() +
		2 // TPC
}

func fallbackSize(c Config) int {
	a, b := rawSize10(c), rawSize00(c)
	if a > b {
		return a
	}
	return b
}

// rawSize11 is the 1_1 size; 0_1 is padded up to it.
func rawSize11(c Config) int {
	return 1 + // format id
		phy.RIVBits(c.BWPPRBs) +
		c.timeAllocBits() +
		1 + // VRB-to-PRB / frequency hopping
		5 + 1 + 2 + // MCS, NDI, RV
		c.harqBits() +
		2 + 2 + // DAI, TPC
		3 + 3 + // PUCCH resource, HARQ timing
		4 + // antenna ports
		2 + // SRS request
		1 // DMRS sequence initialisation
}

// Pack serialises the DCI into its payload bits (without CRC).
func Pack(d DCI, c Config) ([]uint8, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := d.Validate(c); err != nil {
		return nil, err
	}
	size := Size(d.Format, c)
	w := bits.NewWriter(size)
	rivBits := phy.RIVBits(c.BWPPRBs)
	switch d.Format {
	case Format10:
		w.WriteBool(true)
		w.WriteUint(uint64(d.FreqAlloc), rivBits)
		w.WriteUint(uint64(d.TimeAlloc), c.timeAllocBits())
		w.WriteUint(uint64(d.VRBToPRB), 1)
		w.WriteUint(uint64(d.MCS), 5)
		w.WriteUint(uint64(d.NDI), 1)
		w.WriteUint(uint64(d.RV), 2)
		w.WriteUint(uint64(d.HARQID), c.harqBits())
		w.WriteUint(uint64(d.DAI), 2)
		w.WriteUint(uint64(d.TPC), 2)
		w.WriteUint(uint64(d.PUCCHRes), 3)
		w.WriteUint(uint64(d.HARQTiming), 3)
	case Format00:
		w.WriteBool(false)
		w.WriteUint(uint64(d.FreqAlloc), rivBits)
		w.WriteUint(uint64(d.TimeAlloc), c.timeAllocBits())
		w.WriteUint(uint64(d.FreqHopping), 1)
		w.WriteUint(uint64(d.MCS), 5)
		w.WriteUint(uint64(d.NDI), 1)
		w.WriteUint(uint64(d.RV), 2)
		w.WriteUint(uint64(d.HARQID), c.harqBits())
		w.WriteUint(uint64(d.TPC), 2)
	case Format11, Format01:
		w.WriteBool(d.Format == Format11)
		w.WriteUint(uint64(d.FreqAlloc), rivBits)
		w.WriteUint(uint64(d.TimeAlloc), c.timeAllocBits())
		if d.Format == Format11 {
			w.WriteUint(uint64(d.VRBToPRB), 1)
		} else {
			w.WriteUint(uint64(d.FreqHopping), 1)
		}
		w.WriteUint(uint64(d.MCS), 5)
		w.WriteUint(uint64(d.NDI), 1)
		w.WriteUint(uint64(d.RV), 2)
		w.WriteUint(uint64(d.HARQID), c.harqBits())
		w.WriteUint(uint64(d.DAI), 2)
		w.WriteUint(uint64(d.TPC), 2)
		w.WriteUint(uint64(d.PUCCHRes), 3)
		w.WriteUint(uint64(d.HARQTiming), 3)
		w.WriteUint(uint64(d.Ports), 4)
		w.WriteUint(uint64(d.SRSRequest), 2)
		w.WriteUint(uint64(d.DMRSSeqInit), 1)
	}
	for w.Len() < size {
		w.WriteBit(0) // zero padding up to the aligned size
	}
	return w.Bits(), nil
}

// SizeClass distinguishes the two payload sizes a blind decoder must try:
// fallback (0_0/1_0) and non-fallback (0_1/1_1).
type SizeClass int

// Size classes.
const (
	Fallback SizeClass = iota
	NonFallback
)

// ClassSize returns the payload size of a class.
func ClassSize(sc SizeClass, c Config) int {
	if sc == Fallback {
		return fallbackSize(c)
	}
	return rawSize11(c)
}

// Unpack parses a DCI payload of the given size class. The format
// identifier bit selects uplink vs downlink layout. The payload length
// must equal ClassSize(sc, c).
func Unpack(payload []uint8, sc SizeClass, c Config) (DCI, error) {
	if err := c.Validate(); err != nil {
		return DCI{}, err
	}
	want := ClassSize(sc, c)
	if len(payload) != want {
		return DCI{}, fmt.Errorf("dci: payload %d bits, class needs %d", len(payload), want)
	}
	r := bits.NewReader(payload)
	dl := r.ReadBool()
	rivBits := phy.RIVBits(c.BWPPRBs)
	var d DCI
	switch {
	case sc == Fallback && dl:
		d.Format = Format10
		d.FreqAlloc = uint32(r.ReadUint(rivBits))
		d.TimeAlloc = int(r.ReadUint(c.timeAllocBits()))
		d.VRBToPRB = int(r.ReadUint(1))
		d.MCS = int(r.ReadUint(5))
		d.NDI = uint8(r.ReadUint(1))
		d.RV = int(r.ReadUint(2))
		d.HARQID = int(r.ReadUint(c.harqBits()))
		d.DAI = int(r.ReadUint(2))
		d.TPC = int(r.ReadUint(2))
		d.PUCCHRes = int(r.ReadUint(3))
		d.HARQTiming = int(r.ReadUint(3))
	case sc == Fallback:
		d.Format = Format00
		d.FreqAlloc = uint32(r.ReadUint(rivBits))
		d.TimeAlloc = int(r.ReadUint(c.timeAllocBits()))
		d.FreqHopping = int(r.ReadUint(1))
		d.MCS = int(r.ReadUint(5))
		d.NDI = uint8(r.ReadUint(1))
		d.RV = int(r.ReadUint(2))
		d.HARQID = int(r.ReadUint(c.harqBits()))
		d.TPC = int(r.ReadUint(2))
	default:
		if dl {
			d.Format = Format11
		} else {
			d.Format = Format01
		}
		d.FreqAlloc = uint32(r.ReadUint(rivBits))
		d.TimeAlloc = int(r.ReadUint(c.timeAllocBits()))
		hop := int(r.ReadUint(1))
		if dl {
			d.VRBToPRB = hop
		} else {
			d.FreqHopping = hop
		}
		d.MCS = int(r.ReadUint(5))
		d.NDI = uint8(r.ReadUint(1))
		d.RV = int(r.ReadUint(2))
		d.HARQID = int(r.ReadUint(c.harqBits()))
		d.DAI = int(r.ReadUint(2))
		d.TPC = int(r.ReadUint(2))
		d.PUCCHRes = int(r.ReadUint(3))
		d.HARQTiming = int(r.ReadUint(3))
		d.Ports = int(r.ReadUint(4))
		d.SRSRequest = int(r.ReadUint(2))
		d.DMRSSeqInit = int(r.ReadUint(1))
	}
	if err := r.Err(); err != nil {
		return DCI{}, err
	}
	if err := d.Validate(c); err != nil {
		return DCI{}, fmt.Errorf("dci: unpacked invalid DCI: %w", err)
	}
	return d, nil
}
