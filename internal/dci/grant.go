package dci

import (
	"fmt"

	"nrscope/internal/mcs"
	"nrscope/internal/phy"
)

// LinkConfig carries the UE-dedicated parameters needed to turn a DCI
// into a grant with a transport block size. NR-Scope learns them from
// MSG 4 / RRC Setup (paper §3.1.2, §3.2.2): nof_dmrs per PRB, the
// xOverhead and maxMIMO-Layers of pdsch-ServingCellConfig, and the MCS
// table.
type LinkConfig struct {
	DMRSPerPRB int
	Overhead   int
	Layers     int
	Table      mcs.Table
}

// DefaultLinkConfig mirrors the evaluation cells: one DMRS symbol per
// allocation (12 REs with 2 CDM groups), no extra overhead, single layer,
// 256QAM table.
func DefaultLinkConfig() LinkConfig {
	return LinkConfig{DMRSPerPRB: 12, Overhead: 0, Layers: 1, Table: mcs.TableQAM256}
}

// Grant is a translated DCI: the actual time-frequency allocation and
// transport block the gNB scheduled, mirroring the paper's Appendix B
// "Grant" block.
type Grant struct {
	RNTI     uint16
	Format   Format
	Downlink bool

	StartPRB int
	NumPRB   int
	Time     phy.TimeAlloc

	MCSIndex int
	Table    mcs.Table
	NDI      uint8
	RV       int
	HARQID   int
	Layers   int

	TBS   int     // transport block size in bits
	NRE   int     // effective REs
	NBits int     // channel bits
	R     float64 // code rate
	Qm    int     // modulation order
}

// REGCount returns the allocation size in REGs (1 PRB × 1 symbol), the
// unit of the paper's Fig. 8 decoding-accuracy comparison.
func (g Grant) REGCount() int { return g.NumPRB * g.Time.NumSymbols }

// String renders the grant in the srsRAN-log style of Appendix B.
func (g Grant) String() string {
	dir := "UL"
	if g.Downlink {
		dir = "DL"
	}
	return fmt.Sprintf("rnti=0x%04x dci=%v %s f_alloc=%d:%d t_alloc=%d:%d mcs=%d tbs=%d rv=%d ndi=%d harq_id=%d",
		g.RNTI, g.Format, dir, g.StartPRB, g.NumPRB, g.Time.StartSymbol, g.Time.NumSymbols,
		g.MCSIndex, g.TBS, g.RV, g.NDI, g.HARQID)
}

// ToGrant translates a decoded DCI into a Grant using the cell config
// (field widths, BWP size, time-allocation table) and the UE's link
// config. The fallback formats always use the 64QAM table and a single
// layer, as the standard prescribes for DCI 1_0.
func ToGrant(d DCI, rnti uint16, cfg Config, link LinkConfig) (Grant, error) {
	start, length, err := phy.DecodeRIV(cfg.BWPPRBs, d.FreqAlloc)
	if err != nil {
		return Grant{}, fmt.Errorf("dci: grant translation: %w", err)
	}
	if d.TimeAlloc >= len(phy.DefaultTimeAllocTable) {
		return Grant{}, fmt.Errorf("dci: time alloc row %d beyond table", d.TimeAlloc)
	}
	ta := phy.DefaultTimeAllocTable[d.TimeAlloc]

	table := link.Table
	layers := link.Layers
	if d.Format == Format10 || d.Format == Format00 {
		table = mcs.TableQAM64
		layers = 1
	}
	res, err := mcs.Compute(mcs.TBSParams{
		NPRB:       length,
		NSymbols:   ta.NumSymbols,
		DMRSPerPRB: link.DMRSPerPRB,
		Overhead:   link.Overhead,
		Layers:     layers,
		MCSIndex:   d.MCS,
		Table:      table,
	})
	if err != nil {
		return Grant{}, fmt.Errorf("dci: grant translation: %w", err)
	}
	return Grant{
		RNTI:     rnti,
		Format:   d.Format,
		Downlink: d.Format.Downlink(),
		StartPRB: start,
		NumPRB:   length,
		Time:     ta,
		MCSIndex: d.MCS,
		Table:    table,
		NDI:      d.NDI,
		RV:       d.RV,
		HARQID:   d.HARQID,
		Layers:   layers,
		TBS:      res.TBS,
		NRE:      res.NRE,
		NBits:    res.NBits,
		R:        res.R,
		Qm:       res.Qm,
	}, nil
}
