package dci

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nrscope/internal/mcs"
	"nrscope/internal/phy"
)

func cfg51() Config { return DefaultConfig(51) }

func TestSizeWithinPaperRange(t *testing.T) {
	// Paper §3.2.1: DCI payloads are 30-80 bits.
	for _, prbs := range []int{24, 51, 52, 79, 106} {
		c := DefaultConfig(prbs)
		for _, f := range []Format{Format00, Format01, Format10, Format11} {
			s := Size(f, c)
			if s < 30 || s > 80 {
				t.Errorf("%d PRBs, format %v: size %d outside [30,80]", prbs, f, s)
			}
		}
	}
}

func TestFallbackPairShareSize(t *testing.T) {
	c := cfg51()
	if Size(Format00, c) != Size(Format10, c) {
		t.Error("0_0 and 1_0 sizes differ")
	}
	if Size(Format01, c) != Size(Format11, c) {
		t.Error("0_1 and 1_1 sizes differ")
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	c := cfg51()
	cases := []DCI{
		{Format: Format10, FreqAlloc: 100, TimeAlloc: 2, VRBToPRB: 1, MCS: 9, NDI: 1, RV: 3, HARQID: 7, DAI: 2, TPC: 1, PUCCHRes: 5, HARQTiming: 2},
		{Format: Format00, FreqAlloc: 55, TimeAlloc: 0, FreqHopping: 1, MCS: 17, NDI: 0, RV: 0, HARQID: 15, TPC: 3},
		{Format: Format11, FreqAlloc: 0x33, TimeAlloc: 0, MCS: 27, NDI: 0, RV: 0, HARQID: 11, DAI: 2, TPC: 1, HARQTiming: 2, Ports: 7, SRSRequest: 0, DMRSSeqInit: 0},
		{Format: Format01, FreqAlloc: 200, TimeAlloc: 5, FreqHopping: 0, MCS: 3, NDI: 1, RV: 1, HARQID: 0, DAI: 1, TPC: 2, Ports: 2, SRSRequest: 1, DMRSSeqInit: 1},
	}
	for _, d := range cases {
		payload, err := Pack(d, c)
		if err != nil {
			t.Fatalf("%v: %v", d.Format, err)
		}
		sc := NonFallback
		if d.Format == Format00 || d.Format == Format10 {
			sc = Fallback
		}
		if len(payload) != ClassSize(sc, c) {
			t.Fatalf("%v: payload %d bits, want %d", d.Format, len(payload), ClassSize(sc, c))
		}
		got, err := Unpack(payload, sc, c)
		if err != nil {
			t.Fatalf("%v: unpack: %v", d.Format, err)
		}
		if got != d {
			t.Errorf("%v round trip:\n got %+v\nwant %+v", d.Format, got, d)
		}
	}
}

func TestPackUnpackProperty(t *testing.T) {
	c := cfg51()
	maxRIV := uint32(51 * 52 / 2)
	f := func(riv uint32, ta, m, h, rv, dai, tpc, pr, ht, ports, srs uint8, ndi bool) bool {
		d := DCI{
			Format:      Format11,
			FreqAlloc:   riv % maxRIV,
			TimeAlloc:   int(ta) % c.TimeAllocRows,
			MCS:         int(m) % 32,
			RV:          int(rv) % 4,
			HARQID:      int(h) % 16,
			DAI:         int(dai) % 4,
			TPC:         int(tpc) % 4,
			PUCCHRes:    int(pr) % 8,
			HARQTiming:  int(ht) % 8,
			Ports:       int(ports) % 16,
			SRSRequest:  int(srs) % 4,
			DMRSSeqInit: int(srs) % 2,
		}
		if ndi {
			d.NDI = 1
		}
		payload, err := Pack(d, c)
		if err != nil {
			return false
		}
		got, err := Unpack(payload, NonFallback, c)
		return err == nil && got == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUnpackRejectsWrongLength(t *testing.T) {
	c := cfg51()
	if _, err := Unpack(make([]uint8, 10), Fallback, c); err == nil {
		t.Error("short payload accepted")
	}
}

func TestValidateRejectsBadFields(t *testing.T) {
	c := cfg51()
	bad := []DCI{
		{Format: Format11, TimeAlloc: 99},
		{Format: Format11, MCS: 40},
		{Format: Format11, HARQID: 20},
		{Format: Format11, RV: 7},
	}
	for i, d := range bad {
		if _, err := Pack(d, c); err == nil {
			t.Errorf("case %d: bad DCI packed fine: %+v", i, d)
		}
	}
}

func TestToGrantPaperExample(t *testing.T) {
	// Reconstructs the Appendix B sample as closely as the simplified
	// codec permits: f_alloc spanning 3 PRBs, full 12-symbol allocation,
	// MCS 27 on the 256QAM table.
	c := cfg51()
	riv, err := phy.EncodeRIV(51, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	d := DCI{Format: Format11, FreqAlloc: riv, TimeAlloc: 0, MCS: 27, HARQID: 11, DAI: 2, TPC: 1}
	link := LinkConfig{DMRSPerPRB: 0, Overhead: 0, Layers: 1, Table: mcs.TableQAM256}
	g, err := ToGrant(d, 0x4296, c, link)
	if err != nil {
		t.Fatal(err)
	}
	if g.TBS != 3240 {
		t.Errorf("TBS = %d, want 3240 (paper Appendix B)", g.TBS)
	}
	if g.Qm != 8 || g.NBits != 3456 {
		t.Errorf("Qm=%d NBits=%d, want 8/3456", g.Qm, g.NBits)
	}
	if !g.Downlink || g.RNTI != 0x4296 {
		t.Error("grant direction/RNTI wrong")
	}
	if g.REGCount() != 3*12 {
		t.Errorf("REGCount = %d, want 36", g.REGCount())
	}
}

func TestToGrantFallbackForcesQAM64SingleLayer(t *testing.T) {
	c := cfg51()
	riv, _ := phy.EncodeRIV(51, 10, 20)
	d := DCI{Format: Format10, FreqAlloc: riv, TimeAlloc: 1, MCS: 20}
	link := LinkConfig{DMRSPerPRB: 12, Overhead: 6, Layers: 2, Table: mcs.TableQAM256}
	g, err := ToGrant(d, 0xFFFF, c, link)
	if err != nil {
		t.Fatal(err)
	}
	if g.Table != mcs.TableQAM64 || g.Layers != 1 {
		t.Errorf("fallback grant table=%v layers=%d, want 64qam/1", g.Table, g.Layers)
	}
}

func TestToGrantRejectsBadRIV(t *testing.T) {
	c := cfg51()
	d := DCI{Format: Format11, FreqAlloc: 1<<31 - 1}
	if _, err := ToGrant(d, 1, c, DefaultLinkConfig()); err == nil {
		t.Error("absurd RIV accepted")
	}
}

func TestGrantStringIncludesKeyFields(t *testing.T) {
	c := cfg51()
	riv, _ := phy.EncodeRIV(51, 0, 5)
	d := DCI{Format: Format11, FreqAlloc: riv, MCS: 10, HARQID: 3}
	g, err := ToGrant(d, 0x4601, c, DefaultLinkConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := g.String()
	for _, want := range []string{"rnti=0x4601", "dci=1_1", "DL", "mcs=10", "harq_id=3"} {
		if !contains(s, want) {
			t.Errorf("grant string %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestRARNTIInRange(t *testing.T) {
	f := func(slot uint16) bool {
		r := RARNTI(int(slot))
		return r >= MinCRNTI && r <= MaxCRNTI
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFormatProperties(t *testing.T) {
	if !Format10.Downlink() || !Format11.Downlink() {
		t.Error("DL formats misclassified")
	}
	if Format00.Downlink() || Format01.Downlink() {
		t.Error("UL formats misclassified")
	}
	if Format11.String() != "1_1" || Format00.String() != "0_0" {
		t.Error("format String() wrong")
	}
}

func BenchmarkPackUnpack11(b *testing.B) {
	c := cfg51()
	riv, _ := phy.EncodeRIV(51, 0, 51)
	d := DCI{Format: Format11, FreqAlloc: riv, MCS: 27, HARQID: 11}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		payload, err := Pack(d, c)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Unpack(payload, NonFallback, c); err != nil {
			b.Fatal(err)
		}
	}
}

var benchSink Grant

func BenchmarkToGrant(b *testing.B) {
	c := cfg51()
	riv, _ := phy.EncodeRIV(51, 0, 51)
	d := DCI{Format: Format11, FreqAlloc: riv, MCS: 27, HARQID: 11}
	link := DefaultLinkConfig()
	rng := rand.New(rand.NewSource(1))
	_ = rng
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := ToGrant(d, 0x4601, c, link)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = g
	}
}
