package shard

import (
	"flag"
	"fmt"
	"sync"
	"testing"
	"time"

	"nrscope/internal/channel"
	"nrscope/internal/core"
	"nrscope/internal/history"
	"nrscope/internal/radio"
	"nrscope/internal/ran"
	"nrscope/internal/traffic"
)

// decodeTB is one simulated cell feeding the decode-in-shard path: its
// own gNB, receiver, and telemetry engine (attached to the supervisor
// with AttachScope rather than driven by the test).
type decodeTB struct {
	cfg ran.CellConfig
	gnb *ran.GNB
	rx  *radio.Receiver
	sc  *core.Scope
}

func newDecodeTB(tb testing.TB, cellID uint16, seed int64) *decodeTB {
	tb.Helper()
	cfg := ran.AmarisoftCell()
	cfg.CellID = cellID
	cfg.Seed = seed
	gnb, err := ran.NewGNB(cfg, 1<<20)
	if err != nil {
		tb.Fatal(err)
	}
	return &decodeTB{
		cfg: cfg,
		gnb: gnb,
		rx:  radio.NewReceiver(channel.Normal, 25, cfg.Seed^0xACE),
		sc:  core.New(cfg.CellID),
	}
}

func (d *decodeTB) addUE() {
	d.gnb.AddUE(func(rnti uint16, seed int64) (traffic.Generator, traffic.Generator, *channel.Channel) {
		return traffic.NewBulk(4000), traffic.NewCBR(200e3, d.cfg.TTI()),
			channel.New(channel.Normal, d.cfg.BaseSNRdB, seed)
	}, -1)
}

func (d *decodeTB) stepRaw() *radio.Capture {
	out := d.gnb.Step()
	return d.rx.Capture(out.SlotIdx, out.Ref, out.Grid)
}

// TestDecodeInShardEndToEnd: two cells on a two-shard supervisor, the
// raw captures ride the shard queues and the workers run the blind
// decode themselves. Both cells must complete the full acquisition
// sequence (MIB, SIB1, MSG4) inside the workers, the decoded records
// must land in the owning partitions, and the queue accounting must
// close over capture items exactly as over record items.
func TestDecodeInShardEndToEnd(t *testing.T) {
	const slots = 600
	sup := New(Config{
		Shards:       2,
		Policy:       Block,
		History:      history.Config{BinWidth: 10 * time.Millisecond},
		StallTimeout: -1,
	})
	tbs := []*decodeTB{newDecodeTB(t, 101, 11), newDecodeTB(t, 102, 12)}
	for _, d := range tbs {
		if _, err := sup.AddCell(d.cfg.CellID, d.cfg.Mu); err != nil {
			t.Fatal(err)
		}
		if err := sup.AttachScope(d.cfg.CellID, d.sc); err != nil {
			t.Fatal(err)
		}
		d.addUE()
	}
	// A capture for a cell without a scope must be refused up front.
	if err := sup.SubmitCapture(999, tbs[0].stepRaw()); err == nil {
		t.Fatal("SubmitCapture for unknown cell accepted")
	}
	if err := sup.Start(); err != nil {
		t.Fatal(err)
	}
	defer sup.Close()

	var wg sync.WaitGroup
	for _, d := range tbs {
		wg.Add(1)
		go func(d *decodeTB) {
			defer wg.Done()
			for i := 0; i < slots; i++ {
				if err := sup.SubmitCapture(d.cfg.CellID, d.stepRaw()); err != nil {
					t.Error(err)
					return
				}
			}
		}(d)
	}
	wg.Wait()
	sup.Flush()

	h := sup.Health()
	if h.DecodedSlots != 2*slots {
		t.Fatalf("decoded %d slots, want %d", h.DecodedSlots, 2*slots)
	}
	if h.Ingested != 2*slots || h.Applied != 2*slots || h.Dropped != 0 {
		t.Fatalf("accounting: ingested=%d applied=%d dropped=%d, want %d/%d/0",
			h.Ingested, h.Applied, h.Dropped, 2*slots, 2*slots)
	}
	for _, d := range tbs {
		if !d.sc.CellAcquired() {
			t.Errorf("cell %d never acquired MIB+SIB1 in the shard worker", d.cfg.CellID)
		}
		if !d.sc.SetupKnown() {
			t.Errorf("cell %d never saw MSG4 in the shard worker", d.cfg.CellID)
		}
		ues := d.sc.KnownUEs()
		if len(ues) == 0 {
			t.Errorf("cell %d discovered no UEs", d.cfg.CellID)
			continue
		}
		// The decoded records were folded into the owning partition.
		idx, _ := sup.Partition(d.cfg.CellID)
		samples, err := sup.Store(idx).QueryWindow(d.cfg.CellID, ues[0], time.Minute, 1)
		if err != nil || len(samples) == 0 {
			t.Errorf("cell %d: no history for discovered UE %#x in shard %d (%v)",
				d.cfg.CellID, ues[0], idx, err)
		}
	}
	// Per-shard decode counters sum to the rollup.
	var perShard int64
	for _, ps := range h.PerShard {
		perShard += ps.DecodedSlots
	}
	if perShard != h.DecodedSlots {
		t.Fatalf("per-shard decode counters sum %d != rollup %d", perShard, h.DecodedSlots)
	}
}

// TestDecodeRestartOnPanic: a panic raised while decoding a capture
// (injected through DecodeHook, the capture-side twin of ApplyHook)
// kills the shard worker; the supervisor restarts it, the dropped
// batch is counted, and decode resumes on the same scope afterwards.
func TestDecodeRestartOnPanic(t *testing.T) {
	var once sync.Once
	sup := New(Config{
		Shards:        1,
		Policy:        Block,
		CheckInterval: 2 * time.Millisecond,
		StallTimeout:  -1,
		DecodeHook: func(shard int, cell uint16, cap *radio.Capture) {
			once.Do(func() { panic("injected decode fault") })
		},
	})
	d := newDecodeTB(t, 77, 5)
	if _, err := sup.AddCell(d.cfg.CellID, d.cfg.Mu); err != nil {
		t.Fatal(err)
	}
	if err := sup.AttachScope(d.cfg.CellID, d.sc); err != nil {
		t.Fatal(err)
	}
	if err := sup.Start(); err != nil {
		t.Fatal(err)
	}
	defer sup.Close()

	// First capture trips the fault; its batch becomes counted drops.
	if err := sup.SubmitCapture(d.cfg.CellID, d.stepRaw()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for sup.Health().Restarts == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never restarted after decode panic")
		}
		time.Sleep(time.Millisecond)
	}

	// The restarted worker keeps decoding the same scope.
	const more = 200
	for i := 0; i < more; i++ {
		if err := sup.SubmitCapture(d.cfg.CellID, d.stepRaw()); err != nil {
			t.Fatal(err)
		}
	}
	sup.Flush()
	h := sup.Health()
	if h.DecodedSlots == 0 {
		t.Fatal("no slots decoded after restart")
	}
	if h.Dropped == 0 {
		t.Fatal("panicked batch was not counted as dropped")
	}
	if got := h.Applied + h.Dropped; got != h.Ingested {
		t.Fatalf("accounting open after restart: applied %d + dropped %d != ingested %d",
			h.Applied, h.Dropped, h.Ingested)
	}
}

// The "metro decode" scenario: unlike BenchmarkMetroCapture (which
// replays pre-decoded records and measures ingest/apply), this one
// queues raw slot captures and measures the shard workers running the
// full blind decode. CI runs it at -shards 1 and 4 and gates the
// 4-shard run sustaining >= 2x the 1-shard decode throughput.
var metroDecodeCellsFlag = flag.Int("metro.decodecells", 8, "cells in the metro decode scenario")

func BenchmarkMetroDecode(b *testing.B) {
	cells := *metroDecodeCellsFlag
	for _, shards := range metroShardCounts(b) {
		b.Run(fmt.Sprintf("shards=%d/cells=%d", shards, cells), func(b *testing.B) {
			sup := New(Config{
				Shards:       shards,
				QueueSize:    4096,
				Policy:       Block,
				History:      history.Config{BinWidth: 50 * time.Millisecond, Depth: 8},
				StallTimeout: -1,
			})
			tbs := make([]*decodeTB, cells)
			for i := range tbs {
				tbs[i] = newDecodeTB(b, uint16(200+i), int64(31+i))
				if _, err := sup.AddCell(tbs[i].cfg.CellID, tbs[i].cfg.Mu); err != nil {
					b.Fatal(err)
				}
				if err := sup.AttachScope(tbs[i].cfg.CellID, tbs[i].sc); err != nil {
					b.Fatal(err)
				}
				tbs[i].addUE()
			}
			// Warm each scope through acquisition before the workers take
			// over (legal pre-Start: the scopes have no other driver yet),
			// then pre-generate a steady-state capture stream per cell so
			// the timed region measures decode, not RAN synthesis.
			const streamLen = 64
			streams := make([][]*radio.Capture, cells)
			for i, d := range tbs {
				for s := 0; s < 600; s++ {
					d.sc.ProcessSlot(d.stepRaw())
				}
				if !d.sc.CellAcquired() {
					b.Fatalf("cell %d failed acquisition during warm-up", d.cfg.CellID)
				}
				streams[i] = make([]*radio.Capture, streamLen)
				for s := range streams[i] {
					streams[i][s] = d.stepRaw()
				}
			}
			if err := sup.Start(); err != nil {
				b.Fatal(err)
			}
			defer sup.Close()

			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			share := b.N / cells
			for i, d := range tbs {
				n := share
				if i == 0 {
					n = b.N - share*(cells-1)
				}
				wg.Add(1)
				go func(id uint16, stream []*radio.Capture, n int) {
					defer wg.Done()
					for s := 0; s < n; s++ {
						if err := sup.SubmitCapture(id, stream[s%len(stream)]); err != nil {
							b.Error(err)
							return
						}
					}
				}(d.cfg.CellID, streams[i], n)
			}
			wg.Wait()
			sup.Flush()
			b.StopTimer()

			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "slots/s")
			h := sup.Health()
			if h.Dropped != 0 {
				b.Fatalf("Block policy benchmark dropped %d captures", h.Dropped)
			}
			if h.DecodedSlots != h.Ingested {
				b.Fatalf("decoded %d of %d ingested captures", h.DecodedSlots, h.Ingested)
			}
		})
	}
}
