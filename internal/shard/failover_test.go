package shard

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"nrscope/internal/obs"
	"nrscope/internal/phy"
	"nrscope/internal/telemetry"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestFailoverPanicRestartResumesPartition is the ISSUE's failover
// scenario: kill one shard's worker mid-ingest (injected panic), assert
// the in-flight records become counted drops in the shard's
// nrscope_shard_* accounting, the supervisor restarts the worker, and
// the restarted worker resumes folding into the SAME history partition —
// pre-crash series survive.
func TestFailoverPanicRestartResumesPartition(t *testing.T) {
	before := obs.Snapshot()
	var bomb atomic.Bool
	sup := newTestSupervisor(t, Config{
		Shards:    2,
		QueueSize: 64,
		Policy:    DropOldest,
		MaxBatch:  1, // one record per batch: the panic drops exactly the poison record
		ApplyHook: func(shard int, cell uint16, rec *telemetry.Record) {
			if bomb.Load() && rec.RNTI == 0xDEAD {
				panic("injected shard fault")
			}
		},
	}, 4)

	victim, _ := sup.Partition(1)
	// Phase 1: healthy ingest builds partition state that must survive.
	for i := 0; i < 20; i++ {
		if err := sup.Ingest(1, trec(i, 0x4601, 4096, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	sup.Flush()
	if got := sup.Store(victim).TrackedUEs(); got != 1 {
		t.Fatalf("pre-crash partition tracks %d UEs, want 1", got)
	}
	preCrash := sup.Health().PerShard[victim]

	// Phase 2: the kill. A poison record panics the victim's worker.
	bomb.Store(true)
	if err := sup.Ingest(1, trec(20, 0xDEAD, 128, 20)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		return sup.Health().PerShard[victim].Restarts >= 1
	}, "supervisor to restart the crashed shard")
	bomb.Store(false)

	// Phase 3: the restarted worker resumes on the intact partition.
	for i := 21; i < 41; i++ {
		if err := sup.Ingest(1, trec(i, 0x4601, 4096, float64(i))); err != nil {
			t.Fatal(err)
		}
		if err := sup.Ingest(1, trec(i, 0x4777, 2048, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	sup.Flush()

	h := sup.Health().PerShard[victim]
	if !h.Up || h.Dead {
		t.Fatalf("victim shard not back up: %+v", h)
	}
	if h.Dropped < 1 {
		t.Fatalf("poison record not counted dropped: %+v", h)
	}
	if got := h.Applied + h.Dropped; got != h.Ingested {
		t.Fatalf("accounting open after failover: applied %d + dropped %d != ingested %d",
			h.Applied, h.Dropped, h.Ingested)
	}
	// The partition retained the pre-crash series AND grew post-crash.
	if got := sup.Store(victim).TrackedUEs(); got != 2 {
		t.Fatalf("post-restart partition tracks %d UEs, want 2 (0x4601 survived + 0x4777 new)", got)
	}
	samples, _ := sup.Store(victim).Query(1, 0x4601, 0, 0, 1)
	var grants int64
	for _, s := range samples {
		grants += s.Grants
	}
	if grants != 40 {
		t.Fatalf("0x4601 shows %d grants across crash, want 40 (20 pre + 20 post)", grants)
	}
	if h.Applied <= preCrash.Applied {
		t.Fatalf("restarted worker applied nothing: %d -> %d", preCrash.Applied, h.Applied)
	}

	// The nrscope_shard_* instruments observed the failover too.
	delta := obs.Delta(before, obs.Snapshot())
	prefix := fmt.Sprintf("nrscope_shard_%d_", victim)
	if delta[prefix+"restarts_total"] < 1 {
		t.Fatalf("%srestarts_total delta = %v, want >= 1", prefix, delta[prefix+"restarts_total"])
	}
	if delta[prefix+"dropped_total"] < 1 {
		t.Fatalf("%sdropped_total delta = %v, want >= 1", prefix, delta[prefix+"dropped_total"])
	}
}

// TestFailoverQueuesDuringOutage: while a shard's worker is down, its
// cells' records keep landing in the bounded queue (DropOldest once
// full — counted, never blocking, even under Block policy), and the
// healthy shard is unaffected.
func TestFailoverQueuesDuringOutage(t *testing.T) {
	var bomb atomic.Bool
	sup := New(Config{
		Shards:    2,
		QueueSize: 8,
		Policy:    Block,
		MaxBatch:  1,
		// Long check interval: the worker stays down for the whole
		// middle of the test, so the queue-while-down path is observable.
		CheckInterval: 500 * time.Millisecond,
		StallTimeout:  -1,
		ApplyHook: func(shard int, cell uint16, rec *telemetry.Record) {
			if bomb.Load() && rec.RNTI == 0xDEAD {
				panic("injected shard fault")
			}
		},
	})
	for c := 1; c <= 2; c++ {
		if _, err := sup.AddCell(uint16(c), phy.Mu1); err != nil {
			t.Fatal(err)
		}
	}
	if err := sup.Start(); err != nil {
		t.Fatal(err)
	}
	defer sup.Close()

	victim, _ := sup.Partition(1)
	peer, _ := sup.Partition(2)
	if victim == peer {
		t.Fatal("cells 1 and 2 share a shard; want distinct partitions")
	}

	bomb.Store(true)
	if err := sup.Ingest(1, trec(0, 0xDEAD, 128, 0)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		return !sup.Health().PerShard[victim].Up
	}, "victim worker to go down")

	// Worker down: pushes must not block despite Block policy, the
	// 8-deep queue holds the freshest 8, the overflow is counted drops.
	start := time.Now()
	for i := 1; i <= 24; i++ {
		if err := sup.Ingest(1, trec(i, 0x4601, 1024, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if took := time.Since(start); took > time.Second {
		t.Fatalf("pushes into a down shard took %v; Block must degrade to DropOldest", took)
	}
	h := sup.Health().PerShard[victim]
	if h.QueueDepth != 8 {
		t.Fatalf("down shard queue depth %d, want full at 8", h.QueueDepth)
	}
	if h.Dropped < 16 {
		t.Fatalf("down shard dropped %d, want >= 16 of 24 overflow pushes", h.Dropped)
	}

	// The healthy peer shard ingests normally throughout the outage.
	for i := 0; i < 10; i++ {
		if err := sup.Ingest(2, trec(i, 0x4602, 1024, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 2*time.Second, func() bool {
		ps := sup.Health().PerShard[peer]
		return ps.Applied == ps.Ingested
	}, "peer shard to drain during the outage")

	// Restart: the queued records (the retained freshest 8) drain into
	// the intact partition.
	bomb.Store(false)
	waitFor(t, 2*time.Second, func() bool {
		return sup.Health().PerShard[victim].Up
	}, "supervisor to restart the victim")
	sup.Flush()
	h = sup.Health().PerShard[victim]
	if got := h.Applied + h.Dropped; got != h.Ingested {
		t.Fatalf("accounting open after outage: applied %d + dropped %d != ingested %d",
			h.Applied, h.Dropped, h.Ingested)
	}
	samples, _ := sup.Store(victim).Query(1, 0x4601, 0, 0, 1)
	var grants int64
	for _, s := range samples {
		grants += s.Grants
	}
	if grants != 8 {
		t.Fatalf("queued-through-outage records applied %d grants, want the retained 8", grants)
	}
}

// TestStallDetectionSupersedesWorker: a worker wedged inside a fold
// (blocking hook) with work queued is declared stalled and superseded by
// a fresh generation; the stall is counted.
func TestStallDetectionSupersedesWorker(t *testing.T) {
	gate := make(chan struct{})
	var wedge atomic.Bool
	sup := newTestSupervisor(t, Config{
		Shards:        1,
		QueueSize:     64,
		MaxBatch:      1,
		StallTimeout:  30 * time.Millisecond,
		CheckInterval: 5 * time.Millisecond,
		ApplyHook: func(shard int, cell uint16, rec *telemetry.Record) {
			if wedge.CompareAndSwap(true, false) {
				<-gate // wedge exactly one fold
			}
		},
	}, 1)
	defer close(gate)

	wedge.Store(true)
	for i := 0; i < 10; i++ {
		if err := sup.Ingest(1, trec(i, 0x4601, 1024, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 2*time.Second, func() bool {
		return sup.Health().PerShard[0].Stalls >= 1
	}, "stall detection to fire")
	waitFor(t, 2*time.Second, func() bool {
		ps := sup.Health().PerShard[0]
		return ps.Up && ps.Applied+ps.Dropped >= 9
	}, "takeover worker to drain the queue")
	// The wedged predecessor still holds one record; the takeover owns
	// the rest. Release the predecessor: it must exit (superseded) and
	// its one in-flight record is accounted (applied or dropped).
}

// TestDeadShardAfterRestartBudget: a shard that keeps crashing exhausts
// MaxRestarts, is declared dead, and its records become counted drops
// while the rest of the deployment stays live.
func TestDeadShardAfterRestartBudget(t *testing.T) {
	sup := newTestSupervisor(t, Config{
		Shards:      2,
		QueueSize:   4,
		MaxBatch:    1,
		MaxRestarts: 2,
		ApplyHook: func(shard int, cell uint16, rec *telemetry.Record) {
			if rec.RNTI == 0xDEAD {
				panic("injected persistent fault")
			}
		},
	}, 2)

	victim, _ := sup.Partition(1)
	peer, _ := sup.Partition(2)

	// Every worker generation dies on the next poison record.
	for i := 0; i < 8; i++ {
		if err := sup.Ingest(1, trec(i, 0xDEAD, 128, float64(i))); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	waitFor(t, 4*time.Second, func() bool {
		return sup.Health().PerShard[victim].Dead
	}, "victim to exhaust its restart budget")
	h := sup.Health().PerShard[victim]
	if h.Restarts != 2 {
		t.Fatalf("victim restarted %d times, want exactly MaxRestarts=2", h.Restarts)
	}

	// Pushes to the dead shard never block and become drops once the
	// 4-deep queue is full.
	preDrops := sup.Health().PerShard[victim].Dropped
	for i := 0; i < 12; i++ {
		if err := sup.Ingest(1, trec(100+i, 0x4601, 1024, float64(100+i))); err != nil {
			t.Fatal(err)
		}
	}
	if h := sup.Health().PerShard[victim]; h.Dropped <= preDrops {
		t.Fatalf("dead shard counted no drops: %d -> %d", preDrops, h.Dropped)
	}

	// The peer shard still works; Flush skips the dead shard.
	for i := 0; i < 10; i++ {
		if err := sup.Ingest(2, trec(i, 0x4602, 1024, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	sup.Flush()
	// The tiny 4-deep DropOldest queue may legitimately evict under the
	// burst; what matters is the peer stayed live, applied work, and its
	// accounting closed.
	if ps := sup.Health().PerShard[peer]; ps.Dead || !ps.Up || ps.Applied == 0 ||
		ps.Applied+ps.Dropped != ps.Ingested {
		t.Fatalf("peer shard degraded alongside the dead one: %+v", ps)
	}
}
