package shard

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nrscope/internal/bus"
	"nrscope/internal/history"
	"nrscope/internal/phy"
	"nrscope/internal/telemetry"
)

func trec(slot int, rnti uint16, tbs int, tms float64) telemetry.Record {
	return telemetry.Record{
		SlotIdx:  slot,
		RNTI:     rnti,
		Downlink: true,
		Format:   "1_1",
		TBS:      tbs,
		NumPRB:   8,
		NRE:      8 * 12 * 12,
		MCS:      12,
		Qm:       6,
		R:        0.6,
		AggLevel: 2,
		TMs:      tms,
	}
}

// newTestSupervisor builds a started supervisor with cells 1..cells
// registered, fast monitor cadence, and stall detection off unless the
// caller overrides.
func newTestSupervisor(t *testing.T, cfg Config, cells int) *Supervisor {
	t.Helper()
	if cfg.CheckInterval == 0 {
		cfg.CheckInterval = 5 * time.Millisecond
	}
	if cfg.StallTimeout == 0 {
		cfg.StallTimeout = -1
	}
	sup := New(cfg)
	for c := 1; c <= cells; c++ {
		if _, err := sup.AddCell(uint16(c), phy.Mu1); err != nil {
			t.Fatal(err)
		}
	}
	if err := sup.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sup.Close() })
	return sup
}

func TestPartitioningBalancedAndDeterministic(t *testing.T) {
	sup := newTestSupervisor(t, Config{Shards: 4}, 10)
	counts := make([]int, 4)
	for c := 1; c <= 10; c++ {
		idx, ok := sup.Partition(uint16(c))
		if !ok {
			t.Fatalf("cell %d unrouted", c)
		}
		counts[idx]++
	}
	for i, n := range counts {
		if n < 2 || n > 3 {
			t.Fatalf("shard %d owns %d of 10 cells; want balanced 2..3 (%v)", i, n, counts)
		}
	}
	// Registration order is the deterministic tiebreak: same AddCell
	// sequence must produce the same partitioning.
	sup2 := newTestSupervisor(t, Config{Shards: 4}, 10)
	for c := 1; c <= 10; c++ {
		a, _ := sup.Partition(uint16(c))
		b, _ := sup2.Partition(uint16(c))
		if a != b {
			t.Fatalf("cell %d routed to shard %d then %d; want deterministic", c, a, b)
		}
	}
}

func TestAddCellErrors(t *testing.T) {
	sup := New(Config{Shards: 2})
	if _, err := sup.AddCell(1, phy.Mu1); err != nil {
		t.Fatal(err)
	}
	if _, err := sup.AddCell(1, phy.Mu1); err == nil {
		t.Fatal("duplicate cell accepted")
	}
	if _, err := sup.AddCell(2, phy.Numerology(9)); err == nil {
		t.Fatal("invalid numerology accepted")
	}
	if err := sup.Start(); err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	if _, err := sup.AddCell(3, phy.Mu1); err == nil {
		t.Fatal("AddCell after Start accepted")
	}
	if err := sup.Ingest(99, trec(0, 0x4601, 1000, 0)); err == nil {
		t.Fatal("Ingest for unknown cell accepted")
	}
}

func TestIngestRoutesToOwningPartition(t *testing.T) {
	sup := newTestSupervisor(t, Config{Shards: 3}, 6)
	for c := 1; c <= 6; c++ {
		for i := 0; i < 10; i++ {
			if err := sup.Ingest(uint16(c), trec(i, 0x4600+uint16(c), 4096, float64(i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	sup.Flush()
	for c := 1; c <= 6; c++ {
		idx, _ := sup.Partition(uint16(c))
		samples, _ := sup.Store(idx).QueryWindow(uint16(c), 0x4600+uint16(c), time.Second, 1)
		var grants int64
		for _, b := range samples {
			grants += b.Grants
		}
		if grants != 10 {
			t.Fatalf("cell %d: %d grants in owning partition, want 10", c, grants)
		}
		// And only the owning partition: others must not know the cell.
		for other := 0; other < sup.Shards(); other++ {
			if other == idx {
				continue
			}
			if leaked, _ := sup.Store(other).QueryWindow(uint16(c), 0x4600+uint16(c), time.Second, 1); leaked != nil {
				t.Fatalf("cell %d leaked into shard %d", c, other)
			}
		}
	}
}

func TestCloseSemantics(t *testing.T) {
	sup := newTestSupervisor(t, Config{Shards: 2}, 2)
	if err := sup.Ingest(1, trec(0, 0x4601, 1000, 0)); err != nil {
		t.Fatal(err)
	}
	if err := sup.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sup.Close(); err != nil {
		t.Fatal("second Close must be a no-op, got", err)
	}
	if err := sup.Ingest(1, trec(1, 0x4601, 1000, 1)); err != ErrClosed {
		t.Fatalf("Ingest after Close = %v, want ErrClosed", err)
	}
	if err := sup.IngestSpare(1, 0, &telemetry.SpareCapacity{}); err != ErrClosed {
		t.Fatalf("IngestSpare after Close = %v, want ErrClosed", err)
	}
	// The queued record was drained before Close returned.
	h := sup.Health()
	if h.Applied != 1 || h.Ingested != 1 {
		t.Fatalf("after Close: applied=%d ingested=%d, want 1/1", h.Applied, h.Ingested)
	}
}

func TestDropOldestEvictionCounted(t *testing.T) {
	// A paused worker (blocking hook) with a tiny queue forces eviction.
	gate := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	sup := newTestSupervisor(t, Config{
		Shards:    1,
		QueueSize: 4,
		Policy:    DropOldest,
		ApplyHook: func(shard int, cell uint16, rec *telemetry.Record) {
			<-gate
		},
	}, 1)
	defer release()
	for i := 0; i < 32; i++ {
		if err := sup.Ingest(1, trec(i, 0x4601, 1000, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	h := sup.Health()
	if h.Dropped == 0 {
		t.Fatalf("32 pushes into a stalled 4-deep DropOldest queue dropped nothing: %+v", h.PerShard[0])
	}
	if h.Ingested != 32 {
		t.Fatalf("ingested=%d, want 32", h.Ingested)
	}
	release()
	sup.Flush()
	h = sup.Health()
	if got := h.Applied + h.Dropped; got != h.Ingested {
		t.Fatalf("accounting open after flush: applied %d + dropped %d != ingested %d",
			h.Applied, h.Dropped, h.Ingested)
	}
}

func TestBusPublishComposes(t *testing.T) {
	b := bus.New()
	var got atomic.Int64
	_, err := b.Subscribe("count", bus.Block, bus.SinkFunc(func(recs []telemetry.Record) error {
		got.Add(int64(len(recs)))
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	sup := newTestSupervisor(t, Config{Shards: 2, Bus: b}, 2)
	for i := 0; i < 10; i++ {
		if err := sup.Ingest(1, trec(i, 0x4601, 1000, float64(i))); err != nil {
			t.Fatal(err)
		}
		if err := sup.Ingest(2, trec(i, 0x4602, 1000, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	sup.Flush()
	b.Close() // drains the subscription before returning
	if n := got.Load(); n != 20 {
		t.Fatalf("bus sink saw %d records, want 20", n)
	}
}

func TestRollupTopKMergesPartitions(t *testing.T) {
	sup := newTestSupervisor(t, Config{Shards: 3}, 6)
	// Cell c's UE moves tbs proportional to c: global ranking must
	// interleave cells that live on different shards.
	for c := 1; c <= 6; c++ {
		for i := 0; i < 5; i++ {
			if err := sup.Ingest(uint16(c), trec(i, 0x4600+uint16(c), 1000*c, float64(i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	sup.Flush()
	ranks, err := sup.TopK("dl_bits", time.Second, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranks) != 3 {
		t.Fatalf("got %d ranks, want 3", len(ranks))
	}
	wantCells := []uint16{6, 5, 4}
	for i, want := range wantCells {
		if ranks[i].Cell != want {
			t.Fatalf("rank %d is cell %d, want %d (ranks %+v)", i, ranks[i].Cell, want, ranks)
		}
	}
	if _, err := sup.TopK("no_such_metric", time.Second, 3); err == nil {
		t.Fatal("bad metric accepted")
	}
}

func TestRollupSnapshotAndHealth(t *testing.T) {
	sup := newTestSupervisor(t, Config{Shards: 2, History: history.Config{BinWidth: 10 * time.Millisecond}}, 4)
	for c := 1; c <= 4; c++ {
		for i := 0; i < 8; i++ {
			if err := sup.Ingest(uint16(c), trec(i, 0x4600+uint16(c), 2048, float64(i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	sup.Flush()
	snap := sup.Snapshot()
	if len(snap.Cells) != 4 {
		t.Fatalf("merged snapshot has %d cells, want 4", len(snap.Cells))
	}
	for i := 1; i < len(snap.Cells); i++ {
		if snap.Cells[i-1].Cell >= snap.Cells[i].Cell {
			t.Fatalf("merged snapshot cells unsorted: %+v", snap.Cells)
		}
	}
	if snap.TrackedUEs != 4 {
		t.Fatalf("merged snapshot tracks %d UEs, want 4", snap.TrackedUEs)
	}
	h := sup.Health()
	if h.Shards != 2 || h.Cells != 4 {
		t.Fatalf("health: shards=%d cells=%d, want 2/4", h.Shards, h.Cells)
	}
	if h.Ingested != 32 || h.Applied != 32 || h.Dropped != 0 {
		t.Fatalf("health totals ingested=%d applied=%d dropped=%d, want 32/32/0",
			h.Ingested, h.Applied, h.Dropped)
	}
	var perShardUEs int
	for _, ps := range h.PerShard {
		if !ps.Up || ps.Dead {
			t.Fatalf("shard %d not healthy: %+v", ps.Shard, ps)
		}
		if ps.QueueCapacity == 0 {
			t.Fatalf("shard %d reports zero queue capacity", ps.Shard)
		}
		perShardUEs += ps.TrackedUEs
	}
	if perShardUEs != h.TrackedUEs {
		t.Fatalf("per-shard UEs sum %d != rollup %d", perShardUEs, h.TrackedUEs)
	}
}

func TestFusionShardsDetectHandovers(t *testing.T) {
	// Cells 1 and 2 land on different shards of a 2-shard supervisor;
	// with a 1-shard supervisor they share one aggregator and an RNTI
	// moving between them is a handover candidate.
	sup := newTestSupervisor(t, Config{Shards: 1, Fusion: true}, 2)
	for i := 0; i < 30; i++ {
		if err := sup.Ingest(1, trec(i, 0x4601, 4096, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 30; i < 60; i++ {
		if err := sup.Ingest(2, trec(i, 0x4601, 4096, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	sup.Flush()
	if hos := sup.Handovers(); len(hos) == 0 {
		t.Fatal("single-shard fusion saw no handover candidates")
	}
	if cas := sup.CarrierAggregation(0.0); cas == nil {
		_ = cas // may legitimately be empty; just exercise the merge path
	}
}

func TestMountServesRollups(t *testing.T) {
	sup := newTestSupervisor(t, Config{Shards: 2}, 4)
	for c := 1; c <= 4; c++ {
		for i := 0; i < 5; i++ {
			if err := sup.Ingest(uint16(c), trec(i, 0x4600+uint16(c), 1024*c, float64(i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	sup.Flush()
	mux := http.NewServeMux()
	sup.Mount(mux)

	get := func(path string) *httptest.ResponseRecorder {
		t.Helper()
		w := httptest.NewRecorder()
		mux.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
		return w
	}

	w := get("/shards")
	if w.Code != http.StatusOK {
		t.Fatalf("/shards: %d", w.Code)
	}
	var r Rollup
	if err := json.Unmarshal(w.Body.Bytes(), &r); err != nil {
		t.Fatal(err)
	}
	if r.Shards != 2 || r.Cells != 4 || len(r.PerShard) != 2 {
		t.Fatalf("/shards rollup: %+v", r)
	}

	w = get("/shards/topk?metric=dl_bits&window=1s&k=2")
	if w.Code != http.StatusOK {
		t.Fatalf("/shards/topk: %d %s", w.Code, w.Body)
	}
	var tk struct {
		Metric string           `json:"metric"`
		Ranks  []history.UERank `json:"ranks"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &tk); err != nil {
		t.Fatal(err)
	}
	if tk.Metric != "dl_bits" || len(tk.Ranks) != 2 {
		t.Fatalf("/shards/topk: %+v", tk)
	}
	if tk.Ranks[0].Cell != 4 {
		t.Fatalf("/shards/topk top cell %d, want 4", tk.Ranks[0].Cell)
	}

	for _, bad := range []string{
		"/shards/topk?window=nope",
		"/shards/topk?k=0",
		"/shards/topk?metric=no_such_metric",
	} {
		if w := get(bad); w.Code != http.StatusBadRequest {
			t.Fatalf("%s: %d, want 400", bad, w.Code)
		}
	}

	w = get("/shards/snapshot")
	if w.Code != http.StatusOK {
		t.Fatalf("/shards/snapshot: %d", w.Code)
	}
	w = get("/shards/handovers")
	if w.Code != http.StatusOK {
		t.Fatalf("/shards/handovers: %d", w.Code)
	}
}

func TestMetroLoadDeterministic(t *testing.T) {
	type key struct {
		cell uint16
		rec  telemetry.Record
	}
	run := func() []key {
		load, err := NewMetroLoad(5, 16, phy.Mu1, 42)
		if err != nil {
			t.Fatal(err)
		}
		var out []key
		for slot := 0; slot < 50; slot++ {
			load.Slot(slot, func(cell uint16, rec telemetry.Record) {
				out = append(out, key{cell, rec})
			})
		}
		return out
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("metro load emitted nothing over 50 slots")
	}
	if len(a) != len(b) {
		t.Fatalf("two runs emitted %d vs %d records", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs between identically-seeded runs", i)
		}
	}
	// All of a cell's RNTIs get scheduled eventually (round-robin).
	seen := map[uint16]bool{}
	for _, k := range a {
		if k.cell == 1 {
			seen[k.rec.RNTI] = true
		}
	}
	if len(seen) != 16 {
		t.Fatalf("cell 1 scheduled %d distinct RNTIs over 50 slots, want all 16", len(seen))
	}

	if _, err := NewMetroLoad(0, 4, phy.Mu1, 1); err == nil {
		t.Fatal("0 cells accepted")
	}
	if _, err := NewMetroLoad(4, 0, phy.Mu1, 1); err == nil {
		t.Fatal("0 UEs accepted")
	}
	if _, err := NewMetroLoad(4, 4, phy.Numerology(9), 1); err == nil {
		t.Fatal("invalid numerology accepted")
	}
}

func TestSpareCapacityRoutes(t *testing.T) {
	sup := newTestSupervisor(t, Config{Shards: 2}, 2)
	if err := sup.Ingest(1, trec(0, 0x4601, 1000, 0)); err != nil {
		t.Fatal(err)
	}
	sp := &telemetry.SpareCapacity{}
	if err := sup.IngestSpare(1, 0, sp); err != nil {
		t.Fatal(err)
	}
	if err := sup.IngestSpare(1, 1, nil); err != nil {
		t.Fatal("nil spare must be a no-op, got", err)
	}
	sup.Flush()
	h := sup.Health()
	if h.Applied != 2 {
		t.Fatalf("applied=%d, want 2 (record + spare)", h.Applied)
	}
}
