package shard

import (
	"fmt"
	"time"

	"nrscope/internal/phy"
	"nrscope/internal/telemetry"
	"nrscope/internal/traffic"
)

// MetroLoad synthesizes the telemetry stream of a metro deployment —
// the ROADMAP's "metro capture" scenario (e.g. 200 cells × 512 tracked
// UEs) — without paying for 200 symbol-level cell simulations: each
// cell's offered load is modulated by internal/traffic generators (a
// frame-paced video burst over a CBR floor, the paper's typical mix)
// and scheduled round-robin over the cell's C-RNTIs at a PDCCH-realistic
// grants-per-slot budget. The stream is deterministic for a seed, so
// benchmarks comparing shard counts replay identical load.
type MetroLoad struct {
	mu    phy.Numerology
	ttiMS float64
	ues   int
	cells []metroCell
}

// grantsPerSlot is the per-cell DCI budget per TTI — roughly what one
// CORESET's CCE space sustains for small aggregation levels.
const grantsPerSlot = 8

// metroCell is one simulated cell's load state.
type metroCell struct {
	id    uint16
	video *traffic.Video
	floor *traffic.CBR
	next  int // round-robin C-RNTI cursor
	grant int // monotone grant counter (drives retx/UL/MCS variation)
}

// NewMetroLoad builds a generator for cells × uesPerCell sessions at
// the numerology's TTI. Cell IDs are 1..cells; C-RNTIs start at 0x4601
// per cell.
func NewMetroLoad(cells, uesPerCell int, mu phy.Numerology, seed int64) (*MetroLoad, error) {
	if cells < 1 || cells > 0xFFFF {
		return nil, fmt.Errorf("shard: metro load needs 1..65535 cells, got %d", cells)
	}
	if uesPerCell < 1 {
		return nil, fmt.Errorf("shard: metro load needs >= 1 UE per cell, got %d", uesPerCell)
	}
	if !mu.Valid() {
		return nil, fmt.Errorf("shard: invalid numerology")
	}
	tti := mu.SlotDuration()
	m := &MetroLoad{
		mu:    mu,
		ttiMS: float64(tti) / float64(time.Millisecond),
		ues:   uesPerCell,
		cells: make([]metroCell, cells),
	}
	for i := range m.cells {
		m.cells[i] = metroCell{
			id: uint16(i + 1),
			// ~48 Mbit/s of video bursts + a 2 Mbit/s floor per cell.
			video: traffic.NewVideo(30, 200000, 0.2, tti, seed+int64(i)),
			floor: traffic.NewCBR(2e6, tti),
		}
	}
	return m, nil
}

// NumCells reports the scenario's cell count.
func (m *MetroLoad) NumCells() int { return len(m.cells) }

// CellID returns the i-th cell's id.
func (m *MetroLoad) CellID(i int) uint16 { return m.cells[i].id }

// Numerology returns the scenario's numerology.
func (m *MetroLoad) Numerology() phy.Numerology { return m.mu }

// Register adds every scenario cell to a supervisor.
func (m *MetroLoad) Register(sup *Supervisor) error {
	for i := range m.cells {
		if _, err := sup.AddCell(m.cells[i].id, m.mu); err != nil {
			return err
		}
	}
	return nil
}

// Slot generates one TTI of records for every cell, invoking emit per
// record, and reports how many records were emitted. Cells with no
// arriving bytes this slot stay silent (bursty load, like real cells).
func (m *MetroLoad) Slot(slotIdx int, emit func(cell uint16, rec telemetry.Record)) int {
	n := 0
	for i := range m.cells {
		n += m.cells[i].slot(slotIdx, m.ttiMS, m.ues, emit)
	}
	return n
}

// CellSlot generates one TTI of records for the i-th cell only — the
// per-shard form: each shard's driver walks its own cells.
func (m *MetroLoad) CellSlot(i, slotIdx int, emit func(cell uint16, rec telemetry.Record)) int {
	return m.cells[i].slot(slotIdx, m.ttiMS, m.ues, emit)
}

func (c *metroCell) slot(slotIdx int, ttiMS float64, ues int, emit func(cell uint16, rec telemetry.Record)) int {
	budget := c.video.NextSlot() + c.floor.NextSlot()
	if budget <= 0 {
		return 0
	}
	grants := grantsPerSlot
	if grants > ues {
		grants = ues
	}
	tbs := budget * 8 / grants
	if tbs < 256 {
		tbs, grants = 256, budget*8/256
		if grants < 1 {
			grants = 1
		}
	}
	for g := 0; g < grants; g++ {
		rnti := uint16(0x4601 + (c.next+g)%ues)
		c.grant++
		downlink := c.grant%5 != 0 // 1-in-5 grants is an uplink flow
		mcs := 10 + (c.grant>>3)%16
		rec := telemetry.Record{
			SlotIdx:  slotIdx,
			SFN:      slotIdx / 20,
			Slot:     slotIdx % 20,
			RNTI:     rnti,
			Downlink: downlink,
			Format:   "1_1",
			TBS:      tbs,
			NumPRB:   4 + mcs/4,
			NRE:      (4 + mcs/4) * 12 * 12,
			MCS:      mcs,
			Qm:       6,
			R:        0.6,
			AggLevel: 2,
			StartCCE: (g * 2) % 16,
			HARQID:   c.grant % 16,
			IsRetx:   c.grant%23 == 0, // ~4% HARQ retransmissions
			TMs:      float64(slotIdx) * ttiMS,
		}
		if !downlink {
			rec.Format = "0_1"
		}
		emit(c.id, rec)
	}
	c.next = (c.next + grants) % ues
	return grants
}
