// Package shard is the metro-scale cell supervisor: one process
// monitoring hundreds of cells partitions them across N shards, each
// shard owning its own ingest worker, its own bounded queue, its own
// history.Store partition and (optionally) its own fusion aggregator —
// the always-on-watcher posture OWL argued control-channel measurement
// needs, grown from NR-Scope's one-cell pipeline to a deployment.
//
// Failure containment is the point of the partitioning: a shard whose
// worker panics or stalls is restarted by the supervisor with its store
// partition intact — the partition object survives the worker, so the
// restarted worker resumes folding into the same retained rings.
// Records arriving for a restarting shard's cells are queued in the
// shard's bounded ring under DropOldest (freshness over completeness
// while the worker is down: drops are counted, never blocking), and the
// steady-state backpressure policy is configurable (Block for lossless
// benchmark/eval ingest).
//
// Cross-shard queries go through the rollup layer (rollup.go): fused
// TopK over every partition, merged deployment snapshots, per-shard
// health with queue depth/drops/restarts, and merged handover /
// carrier-aggregation candidates when per-shard fusion is on. Per-shard
// backpressure and health are exported via internal/obs under
// nrscope_shard_* (metrics.go).
package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nrscope/internal/bus"
	"nrscope/internal/core"
	"nrscope/internal/fusion"
	"nrscope/internal/history"
	"nrscope/internal/phy"
	"nrscope/internal/radio"
	"nrscope/internal/telemetry"
)

// Policy is a shard queue's steady-state backpressure policy (the bus
// policies, reused: the semantics are identical).
type Policy = bus.Policy

// Backpressure policies. During a restart window the effective policy
// is always DropOldest regardless of configuration: a dead worker must
// not block its producers.
const (
	DropOldest = bus.DropOldest
	Block      = bus.Block
)

// ErrClosed is returned by Ingest and IngestSpare after Close.
var ErrClosed = errors.New("shard: supervisor closed")

// Config tunes a Supervisor. The zero value is usable: every field
// defaults sensibly in New.
type Config struct {
	// Shards is the number of cell partitions (default 1).
	Shards int
	// QueueSize bounds each shard's ingest ring queue, in records
	// (default 8192).
	QueueSize int
	// MaxBatch is how many queued records a shard worker drains per
	// apply pass (default 256).
	MaxBatch int
	// Policy is the steady-state backpressure policy of the shard
	// queues (default DropOldest — live deployments prefer fresh
	// telemetry; use Block for lossless benchmark or eval ingest).
	Policy Policy
	// History configures each shard's history.Store partition. MaxUEs
	// is per partition.
	History history.Config
	// Fusion gives each shard its own fusion.Aggregator folding into
	// the shard's partition store: handover and carrier-aggregation
	// candidates are detected within a shard's cells and merged by the
	// rollup layer (cross-shard pairs are not matched — partitioning
	// trades that for isolation).
	Fusion bool
	// Bus, if set, receives every applied record: each shard worker is
	// its own publisher goroutine into the (thread-safe) bus, so -sink
	// fan-out composes with sharding.
	Bus *bus.Bus
	// StallTimeout declares a worker stalled when its queue is
	// non-empty but nothing has been applied for this long; the
	// supervisor then supersedes it with a fresh worker (default 2s;
	// negative disables stall detection).
	StallTimeout time.Duration
	// CheckInterval is the supervisor monitor's health-check cadence
	// (default 100ms).
	CheckInterval time.Duration
	// MaxRestarts bounds per-shard restarts; beyond it the shard is
	// declared dead and its records become counted drops (default 16;
	// negative = unlimited).
	MaxRestarts int
	// ApplyHook, if set, is invoked for every record just before it is
	// applied, outside the shard's apply lock. It exists for fault
	// injection in tests (a panicking or blocking hook exercises the
	// restart and stall paths); leave nil in production.
	ApplyHook func(shard int, cell uint16, rec *telemetry.Record)
	// DecodeHook, if set, is invoked for every queued capture just
	// before the shard worker blind-decodes it, outside the apply lock.
	// Fault injection for the decode-in-shard path; leave nil in
	// production.
	DecodeHook func(shard int, cell uint16, cap *radio.Capture)
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 8192
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.StallTimeout == 0 {
		c.StallTimeout = 2 * time.Second
	}
	if c.CheckInterval <= 0 {
		c.CheckInterval = 100 * time.Millisecond
	}
	if c.MaxRestarts == 0 {
		c.MaxRestarts = 16
	}
	return c
}

// item is one queued unit of shard work: a telemetry record, a
// spare-capacity split (spare != nil), or a raw slot capture to
// blind-decode inside the shard worker (cap != nil).
type item struct {
	cell    uint16
	slotIdx int
	rec     telemetry.Record
	spare   *telemetry.SpareCapacity
	cap     *radio.Capture
}

// Supervisor partitions cells across shards and supervises the shard
// workers. AddCell calls must precede Start; Ingest routes to the
// owning shard through an immutable map afterwards, so the hot path
// takes no supervisor-level lock.
type Supervisor struct {
	cfg    Config
	shards []*shardState
	route  map[uint16]*shardState

	started bool
	closed  atomic.Bool

	monitorStop chan struct{}
	monitorDone chan struct{}
}

// New creates a supervisor with cfg.Shards empty shards. Register cells
// with AddCell, then call Start.
func New(cfg Config) *Supervisor {
	cfg = cfg.withDefaults()
	s := &Supervisor{
		cfg:         cfg,
		route:       make(map[uint16]*shardState),
		monitorStop: make(chan struct{}),
		monitorDone: make(chan struct{}),
	}
	for i := 0; i < cfg.Shards; i++ {
		st := history.New(cfg.History)
		sh := &shardState{
			sup:   s,
			idx:   i,
			store: st,
			buf:   make([]item, cfg.QueueSize),
			wake:  make(chan struct{}, 1),
			met:   metricsFor(i),
		}
		if cfg.Fusion {
			sh.agg = fusion.NewWithStore(st)
			if cfg.History.IdleHorizon > 0 {
				sh.agg.IdleHorizon = cfg.History.IdleHorizon
			}
		}
		sh.notFull = sync.NewCond(&sh.mu)
		sh.met.capacity.Set(int64(cfg.QueueSize))
		s.shards = append(s.shards, sh)
	}
	met.shards.Set(int64(cfg.Shards))
	return s
}

// Shards reports the shard count.
func (s *Supervisor) Shards() int { return len(s.shards) }

// AttachLakes gives every shard's history partition its own spill
// target (history bins evicted from a partition's RAM rings land in
// that shard's lake, and the partition's queries — and therefore the
// rollup fan-in — answer across RAM + disk transparently). The opener
// is called once per shard index so the caller controls the on-disk
// layout (typically one lake directory per shard). Must be called
// after New and before Start.
func (s *Supervisor) AttachLakes(open func(shard int) (history.Lake, error)) error {
	if s.started {
		return errors.New("shard: AttachLakes after Start")
	}
	for i, sh := range s.shards {
		l, err := open(i)
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		sh.store.AttachLake(l)
	}
	return nil
}

// Store returns shard i's history partition (for tests and partition-
// local queries; cross-shard queries go through the rollup layer).
func (s *Supervisor) Store(i int) *history.Store { return s.shards[i].store }

// AttachScope hands a cell's telemetry engine to the shard owning the
// cell, enabling SubmitCapture: the shard worker blind-decodes the
// cell's captures itself instead of the driver, folding the decoded
// records and spare-capacity splits straight into its partition. The
// scope must not be driven concurrently by anyone else. Must be called
// after AddCell and before Start.
func (s *Supervisor) AttachScope(cellID uint16, sc *core.Scope) error {
	if s.started {
		return errors.New("shard: AttachScope after Start")
	}
	if sc == nil {
		return fmt.Errorf("shard: nil scope for cell %d", cellID)
	}
	sh, ok := s.route[cellID]
	if !ok {
		return fmt.Errorf("shard: AttachScope for unregistered cell %d", cellID)
	}
	if sh.scopes == nil {
		sh.scopes = make(map[uint16]*core.Scope)
	}
	if _, dup := sh.scopes[cellID]; dup {
		return fmt.Errorf("shard: cell %d already has a scope", cellID)
	}
	sh.scopes[cellID] = sc
	return nil
}

// Partition reports which shard owns a cell.
func (s *Supervisor) Partition(cellID uint16) (int, bool) {
	sh, ok := s.route[cellID]
	if !ok {
		return 0, false
	}
	return sh.idx, true
}

// AddCell registers a cell with the supervisor, assigning it
// round-robin to the shard with the fewest cells (registration order is
// the deterministic tiebreak). Must be called before Start.
func (s *Supervisor) AddCell(cellID uint16, mu phy.Numerology) (int, error) {
	if s.started {
		return 0, errors.New("shard: AddCell after Start")
	}
	if !mu.Valid() {
		return 0, fmt.Errorf("shard: invalid numerology for cell %d", cellID)
	}
	if _, dup := s.route[cellID]; dup {
		return 0, fmt.Errorf("shard: cell %d already registered", cellID)
	}
	sh := s.shards[0]
	for _, cand := range s.shards[1:] {
		if cand.cells < sh.cells {
			sh = cand
		}
	}
	if sh.agg != nil {
		if err := sh.agg.AddCell(cellID, mu); err != nil {
			return 0, err
		}
	} else if err := sh.store.AddCell(cellID, mu.SlotDuration()); err != nil {
		return 0, err
	}
	sh.cells++
	sh.cellIDs = append(sh.cellIDs, cellID)
	s.route[cellID] = sh
	met.cells.Set(int64(len(s.route)))
	return sh.idx, nil
}

// Start launches one worker per shard and the health monitor.
func (s *Supervisor) Start() error {
	if s.started {
		return errors.New("shard: already started")
	}
	s.started = true
	for _, sh := range s.shards {
		sh.startWorker(sh.gen.Load())
	}
	go s.monitor()
	return nil
}

// Ingest routes one record to the shard owning its cell. Safe for
// concurrent use. Under DropOldest (or while the owning shard's worker
// is down) a full queue evicts its oldest record as a counted drop;
// under Block it waits for space.
func (s *Supervisor) Ingest(cellID uint16, rec telemetry.Record) error {
	if s.closed.Load() {
		return ErrClosed
	}
	sh, ok := s.route[cellID]
	if !ok {
		return fmt.Errorf("shard: unknown cell %d", cellID)
	}
	sh.push(item{cell: cellID, rec: rec})
	return nil
}

// IngestSpare routes one TTI's spare-capacity split to the shard owning
// the cell.
func (s *Supervisor) IngestSpare(cellID uint16, slotIdx int, sp *telemetry.SpareCapacity) error {
	if sp == nil {
		return nil
	}
	if s.closed.Load() {
		return ErrClosed
	}
	sh, ok := s.route[cellID]
	if !ok {
		return fmt.Errorf("shard: unknown cell %d", cellID)
	}
	sh.push(item{cell: cellID, slotIdx: slotIdx, spare: sp})
	return nil
}

// SubmitCapture routes one raw slot capture to the shard owning its
// cell; the shard worker blind-decodes it with the cell's attached
// scope (AttachScope) and folds the results into its partition.
// Captures ride the same bounded queue as records, under the same
// backpressure and restart accounting. Per-cell submissions must be in
// slot order (the decode state is sequential across slots).
func (s *Supervisor) SubmitCapture(cellID uint16, cap *radio.Capture) error {
	if s.closed.Load() {
		return ErrClosed
	}
	sh, ok := s.route[cellID]
	if !ok {
		return fmt.Errorf("shard: unknown cell %d", cellID)
	}
	if sh.scopes[cellID] == nil {
		return fmt.Errorf("shard: cell %d has no attached scope", cellID)
	}
	sh.push(item{cell: cellID, slotIdx: cap.SlotIdx, cap: cap})
	return nil
}

// Flush blocks until every live shard's queue has been fully applied
// (or counted dropped) — the barrier benchmarks and tests use between
// an ingest burst and a query. Dead shards (restart budget exhausted)
// are skipped. Must not be called after Close.
func (s *Supervisor) Flush() {
	for _, sh := range s.shards {
		for !sh.dead.Load() {
			sh.mu.Lock()
			empty := sh.n == 0
			sh.mu.Unlock()
			if empty && sh.ingested.Load() == sh.applied.Load()+sh.dropped.Load() {
				break
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
}

// Close stops the supervisor: Ingest starts returning ErrClosed, the
// monitor exits, every live worker drains its queue in full, and shard
// state (store partitions, aggregators) remains readable for end-of-run
// rollups. Idempotent.
func (s *Supervisor) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(s.monitorStop)
	if s.started {
		<-s.monitorDone
	}
	for _, sh := range s.shards {
		sh.beginClose()
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		done := sh.workerDone
		up := sh.workerUp.Load()
		// A worker that died after the monitor stopped leaves its queue
		// behind: count it as dropped so the accounting closes.
		if !up && sh.n > 0 {
			sh.countDropsLocked(sh.n)
			sh.n, sh.head = 0, 0
			sh.met.depth.Set(0)
		}
		sh.mu.Unlock()
		if done != nil && up {
			<-done
		}
	}
	return nil
}

// monitor is the supervisor's health loop: it restarts dead workers,
// supersedes stalled ones, and refreshes the tracked-UE gauges.
func (s *Supervisor) monitor() {
	defer close(s.monitorDone)
	ticker := time.NewTicker(s.cfg.CheckInterval)
	defer ticker.Stop()
	type stallTrack struct {
		applied int64
		since   time.Time
	}
	tracks := make([]stallTrack, len(s.shards))
	for {
		select {
		case <-s.monitorStop:
			return
		case <-ticker.C:
		}
		var ues int64
		for i, sh := range s.shards {
			tracked := int64(sh.store.TrackedUEs())
			sh.met.ues.Set(tracked)
			ues += tracked
			if sh.dead.Load() {
				continue
			}
			if !sh.workerUp.Load() {
				s.restart(sh)
				tracks[i] = stallTrack{}
				continue
			}
			if s.cfg.StallTimeout <= 0 {
				continue
			}
			sh.mu.Lock()
			depth := sh.n
			sh.mu.Unlock()
			applied := sh.applied.Load() + sh.dropped.Load()
			if depth == 0 || applied != tracks[i].applied {
				tracks[i] = stallTrack{applied: applied}
				continue
			}
			if tracks[i].since.IsZero() {
				tracks[i].since = time.Now()
				continue
			}
			if time.Since(tracks[i].since) >= s.cfg.StallTimeout {
				sh.stalls.Add(1)
				sh.met.stalls.Inc()
				s.restart(sh)
				tracks[i] = stallTrack{}
			}
		}
		met.ues.Set(ues)
	}
}

// restart brings up a fresh worker on the shard's existing queue and
// store partition. A stalled predecessor is superseded by the
// generation bump: it exits at its next collect, and the apply lock
// keeps the two from folding into the partition concurrently.
func (s *Supervisor) restart(sh *shardState) {
	if s.cfg.MaxRestarts >= 0 && int(sh.restarts.Load()) >= s.cfg.MaxRestarts {
		if sh.dead.CompareAndSwap(false, true) {
			// Beyond the budget the shard stays down; wake any Block
			// publishers so they fall through to DropOldest eviction.
			sh.mu.Lock()
			sh.notFull.Broadcast()
			sh.mu.Unlock()
		}
		return
	}
	sh.restarts.Add(1)
	sh.met.restarts.Inc()
	sh.startWorker(sh.gen.Add(1))
}

// shardState is one shard: its bounded ingest ring, its worker, its
// history partition and optional fusion aggregator, and its health
// accounting.
type shardState struct {
	sup   *Supervisor
	idx   int
	store *history.Store
	agg   *fusion.Aggregator
	met   *shardMetrics

	cells   int
	cellIDs []uint16

	// scopes holds the per-cell telemetry engines attached before Start
	// (AttachScope); read-only afterwards, so workers touch it without
	// the queue lock.
	scopes map[uint16]*core.Scope

	mu      sync.Mutex
	notFull *sync.Cond
	buf     []item
	head, n int
	closed  bool
	wake    chan struct{}

	// workerDone is replaced (under mu) each time a worker generation
	// starts; Close waits on the current one.
	workerDone chan struct{}

	// applyMu serializes partition mutation (store + aggregator folds)
	// between a worker, a superseding worker, and rollup queries that
	// read the (unlocked) fusion aggregator.
	applyMu sync.Mutex

	gen      atomic.Int64
	workerUp atomic.Bool
	dead     atomic.Bool

	ingested atomic.Int64 // records accepted into the queue
	applied  atomic.Int64 // records folded into the partition
	dropped  atomic.Int64 // queue evictions + close-time discards
	rejected atomic.Int64 // pushes refused by a closed queue
	decoded  atomic.Int64 // slot captures blind-decoded in the worker
	restarts atomic.Int64
	stalls   atomic.Int64
}

// countDropsLocked accounts n dropped records. Caller holds sh.mu.
func (sh *shardState) countDropsLocked(n int) {
	sh.dropped.Add(int64(n))
	sh.met.dropped.Add(int64(n))
}

// push enqueues one item. Under Block policy it waits for space while
// the worker is up; a down (or dead) worker degrades to DropOldest so a
// restart window never blocks producers.
func (sh *shardState) push(it item) {
	sh.mu.Lock()
	for sh.n == len(sh.buf) {
		if sh.closed {
			sh.mu.Unlock()
			sh.rejected.Add(1)
			sh.met.rejected.Inc()
			return
		}
		if sh.sup.cfg.Policy == DropOldest || !sh.workerUp.Load() || sh.dead.Load() {
			sh.buf[sh.head] = item{}
			sh.head = (sh.head + 1) % len(sh.buf)
			sh.n--
			sh.countDropsLocked(1)
			break
		}
		sh.notFull.Wait()
	}
	if sh.closed {
		sh.mu.Unlock()
		sh.rejected.Add(1)
		sh.met.rejected.Inc()
		return
	}
	sh.buf[(sh.head+sh.n)%len(sh.buf)] = it
	sh.n++
	sh.met.depth.Set(int64(sh.n))
	sh.mu.Unlock()
	sh.ingested.Add(1)
	sh.met.ingested.Inc()
	select {
	case sh.wake <- struct{}{}:
	default:
	}
}

// beginClose marks the queue closed and wakes the worker and any
// blocked publishers; the worker drains what is queued and exits.
func (sh *shardState) beginClose() {
	sh.mu.Lock()
	sh.closed = true
	sh.notFull.Broadcast()
	sh.mu.Unlock()
	select {
	case sh.wake <- struct{}{}:
	default:
	}
}

// startWorker launches worker generation gen on the shard.
func (sh *shardState) startWorker(gen int64) {
	done := make(chan struct{})
	sh.mu.Lock()
	sh.workerDone = done
	sh.mu.Unlock()
	sh.workerUp.Store(true)
	go sh.runWorker(gen, done)
}

// runWorker is the shard's ingest worker: drain a batch, apply it to
// the partition, publish, repeat. A panic (from a record fold or an
// injected fault) marks the worker down for the monitor to restart —
// the store partition survives untouched.
func (sh *shardState) runWorker(gen int64, done chan struct{}) {
	defer close(done)
	batch := make([]item, 0, sh.sup.cfg.MaxBatch)
	defer func() {
		if r := recover(); r != nil {
			// The in-flight batch was already dequeued; count it as
			// dropped so ingested == applied + dropped keeps holding.
			sh.mu.Lock()
			sh.countDropsLocked(len(batch))
			sh.mu.Unlock()
			if sh.gen.Load() == gen {
				sh.workerUp.Store(false)
			}
			sh.mu.Lock()
			sh.notFull.Broadcast()
			sh.mu.Unlock()
		}
	}()
	for {
		batch = sh.collect(batch[:0], gen)
		if len(batch) == 0 {
			return // closed and drained, or superseded
		}
		sh.apply(batch)
		batch = batch[:0] // applied: a later panic must not re-count it
	}
}

// collect blocks until work is queued, then drains up to MaxBatch
// items. It returns an empty batch when the shard is closed and fully
// drained, or when this worker generation has been superseded.
func (sh *shardState) collect(batch []item, gen int64) []item {
	for {
		if sh.gen.Load() != gen {
			return batch[:0]
		}
		sh.mu.Lock()
		if sh.n > 0 {
			for sh.n > 0 && len(batch) < cap(batch) {
				batch = append(batch, sh.buf[sh.head])
				sh.buf[sh.head] = item{}
				sh.head = (sh.head + 1) % len(sh.buf)
				sh.n--
			}
			sh.met.depth.Set(int64(sh.n))
			sh.notFull.Broadcast()
			sh.mu.Unlock()
			return batch
		}
		if sh.closed {
			sh.mu.Unlock()
			return batch[:0]
		}
		sh.mu.Unlock()
		<-sh.wake
	}
}

// apply folds one batch into the shard's partition. The hooks (fault
// injection) run outside applyMu so a blocked hook can be superseded
// by a takeover worker; the partition folds run under applyMu so a
// superseded worker's in-flight batch cannot interleave with its
// successor's.
func (sh *shardState) apply(batch []item) {
	if hook := sh.sup.cfg.ApplyHook; hook != nil {
		for i := range batch {
			if batch[i].spare == nil && batch[i].cap == nil {
				hook(sh.idx, batch[i].cell, &batch[i].rec)
			}
		}
	}
	if hook := sh.sup.cfg.DecodeHook; hook != nil {
		for i := range batch {
			if batch[i].cap != nil {
				hook(sh.idx, batch[i].cell, batch[i].cap)
			}
		}
	}
	pubs := sh.applyBatch(batch)
	if b := sh.sup.cfg.Bus; b != nil {
		for i := range batch {
			if batch[i].spare == nil && batch[i].cap == nil {
				_ = b.Publish(batch[i].rec)
			}
		}
		for i := range pubs {
			_ = b.Publish(pubs[i])
		}
	}
	sh.applied.Add(int64(len(batch)))
	sh.met.applied.Add(int64(len(batch)))
}

// applyBatch holds applyMu across the batch fold; the deferred unlock
// keeps the lock released even when a fold panics (the worker's recover
// then reports the crash with the partition lock free). Capture items
// are blind-decoded here — under applyMu, so a superseded worker's
// in-flight decode cannot interleave with its successor on the same
// scope — and the decoded records fold like ingested ones. The records
// produced from captures are returned for bus publication outside the
// lock (nil when no bus is attached).
func (sh *shardState) applyBatch(batch []item) []telemetry.Record {
	sh.applyMu.Lock()
	defer sh.applyMu.Unlock()
	var pubs []telemetry.Record
	wantPubs := sh.sup.cfg.Bus != nil
	for i := range batch {
		it := &batch[i]
		switch {
		case it.cap != nil:
			res := sh.scopes[it.cell].ProcessSlot(it.cap)
			sh.decoded.Add(1)
			sh.met.decoded.Inc()
			for _, rec := range res.Records {
				sh.fold(it.cell, rec)
			}
			if res.Spare != nil {
				sh.store.IngestSpare(it.cell, res.SlotIdx, res.Spare)
			}
			if wantPubs {
				pubs = append(pubs, res.Records...)
			}
		case it.spare != nil:
			sh.store.IngestSpare(it.cell, it.slotIdx, it.spare)
		default:
			sh.fold(it.cell, it.rec)
		}
	}
	return pubs
}

// fold applies one record to the shard's partition, through the fusion
// aggregator when one is attached (it folds into the partition store
// itself). Caller holds applyMu.
func (sh *shardState) fold(cell uint16, rec telemetry.Record) {
	if sh.agg != nil {
		_ = sh.agg.Ingest(cell, rec)
	} else {
		sh.store.Ingest(cell, rec)
	}
}
