package shard

import (
	"strconv"
	"sync"

	"nrscope/internal/obs"
)

// met is the supervisor-wide instrumentation: deployment-level gauges
// only. Per-record counters live in per-shard instrument sets
// (shardMetrics) so shards never contend on a shared counter cache line
// in the ingest hot path; global totals are rolled up by Health() from
// the per-shard instruments instead.
var met = struct {
	shards *obs.Gauge
	cells  *obs.Gauge
	ues    *obs.Gauge
}{
	shards: obs.Default.Gauge("nrscope_shard_shards",
		"shards the cell supervisor partitions its cells across"),
	cells: obs.Default.Gauge("nrscope_shard_cells",
		"cells registered with the shard supervisor"),
	ues: obs.Default.Gauge("nrscope_shard_ues_tracked",
		"UE series tracked across all shard history partitions"),
}

// shardMetrics is one shard's instrument set, registered under the
// nrscope_shard_<i>_* prefix. Supervisors in the same process sharing a
// shard index share instruments (counters aggregate, Prometheus process
// semantics); per-supervisor truth lives in the shard's local atomics
// and is what Health() reports.
type shardMetrics struct {
	ingested *obs.Counter
	applied  *obs.Counter
	dropped  *obs.Counter
	rejected *obs.Counter
	depth    *obs.Gauge
	capacity *obs.Gauge
	restarts *obs.Counter
	stalls   *obs.Counter
	ues      *obs.Gauge
	decoded  *obs.Counter
}

var (
	shardMetricsMu    sync.Mutex
	shardMetricsCache = map[int]*shardMetrics{}
)

// metricsFor resolves (or creates) the instrument set for a shard index.
func metricsFor(idx int) *shardMetrics {
	shardMetricsMu.Lock()
	defer shardMetricsMu.Unlock()
	if m, ok := shardMetricsCache[idx]; ok {
		return m
	}
	i := strconv.Itoa(idx)
	p := "nrscope_shard_" + i + "_"
	m := &shardMetrics{
		ingested: obs.Default.Counter(p+"ingested_total",
			"records accepted into shard "+i+"'s ingest queue"),
		applied: obs.Default.Counter(p+"applied_total",
			"records folded into shard "+i+"'s history partition"),
		dropped: obs.Default.Counter(p+"dropped_total",
			"records dropped towards shard "+i+" (queue eviction during overload or restart)"),
		rejected: obs.Default.Counter(p+"rejected_total",
			"records refused by shard "+i+"'s closed queue"),
		depth: obs.Default.Gauge(p+"queue_depth",
			"records queued towards shard "+i+" (last sampled)"),
		capacity: obs.Default.Gauge(p+"queue_capacity",
			"ingest ring queue capacity of shard "+i),
		restarts: obs.Default.Counter(p+"restarts_total",
			"times shard "+i+"'s worker was restarted by the supervisor"),
		stalls: obs.Default.Counter(p+"stalls_total",
			"times shard "+i+"'s worker was declared stalled and superseded"),
		ues: obs.Default.Gauge(p+"ues_tracked",
			"UE series tracked by shard "+i+"'s history partition"),
		decoded: obs.Default.Counter(p+"slots_decoded_total",
			"slot captures blind-decoded inside shard "+i+"'s worker"),
	}
	shardMetricsCache[idx] = m
	return m
}
