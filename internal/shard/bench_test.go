package shard

import (
	"flag"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"nrscope/internal/history"
	"nrscope/internal/phy"
	"nrscope/internal/telemetry"
)

// The "metro capture" scenario: the ROADMAP's metro-scale target of one
// process supervising hundreds of cells. BenchmarkMetroCapture replays a
// deterministic 200-cell × 512-UE record stream through the supervisor
// at each shard count; CI runs it at -shards 1 and 4 and gates the build
// on the 4-shard run sustaining >= 2.5x the 1-shard throughput
// (cmd/benchgate against the BENCH_metro.json artifact).
var (
	metroShardsFlag = flag.String("metro.shards", "1,2,4", "comma-separated shard counts for BenchmarkMetroCapture")
	metroCellsFlag  = flag.Int("metro.cells", 200, "cells in the metro capture scenario")
	metroUEsFlag    = flag.Int("metro.ues", 512, "tracked UEs per cell in the metro capture scenario")
)

func metroShardCounts(tb testing.TB) []int {
	var out []int
	for _, f := range strings.Split(*metroShardsFlag, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			tb.Fatalf("bad -metro.shards element %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		tb.Fatal("-metro.shards is empty")
	}
	return out
}

// metroStream pre-generates the scenario's record stream grouped by the
// shard that will receive it, so the timed region measures supervisor
// ingest + apply, not load synthesis.
func metroStream(tb testing.TB, load *MetroLoad, sup *Supervisor, slots int) [][]item {
	perShard := make([][]item, sup.Shards())
	for slot := 0; slot < slots; slot++ {
		load.Slot(slot, func(cell uint16, rec telemetry.Record) {
			idx, ok := sup.Partition(cell)
			if !ok {
				tb.Fatalf("cell %d not registered", cell)
			}
			perShard[idx] = append(perShard[idx], item{cell: cell, rec: rec})
		})
	}
	for i, s := range perShard {
		if len(s) == 0 {
			tb.Fatalf("shard %d received no stream records; widen the slot range", i)
		}
	}
	return perShard
}

func newMetroSupervisor(tb testing.TB, shards, cells, ues int) (*Supervisor, *MetroLoad) {
	load, err := NewMetroLoad(cells, ues, phy.Mu1, 1)
	if err != nil {
		tb.Fatal(err)
	}
	sup := New(Config{
		Shards:    shards,
		QueueSize: 8192,
		MaxBatch:  256,
		Policy:    Block, // no silent drops: throughput numbers mean "records applied"
		History: history.Config{
			// Small rings keep the 102,400-series scenario ~100 MB;
			// the bench measures ingest scaling, not retention depth.
			BinWidth: 50 * time.Millisecond,
			Depth:    8,
			MaxUEs:   cells*ues/shards + cells, // per-partition cap, slack for uneven cell split
		},
		StallTimeout: -1, // a saturated benchmark apply loop is not a stall
	})
	if err := load.Register(sup); err != nil {
		tb.Fatal(err)
	}
	if err := sup.Start(); err != nil {
		tb.Fatal(err)
	}
	return sup, load
}

func BenchmarkMetroCapture(b *testing.B) {
	cells, ues := *metroCellsFlag, *metroUEsFlag
	for _, shards := range metroShardCounts(b) {
		b.Run(fmt.Sprintf("shards=%d/cells=%d/ues=%d", shards, cells, ues), func(b *testing.B) {
			sup, load := newMetroSupervisor(b, shards, cells, ues)
			defer sup.Close()

			// 256 slots of stream: enough for the round-robin scheduler
			// to touch every C-RNTI, so the warm-up replay below creates
			// all UE series and the timed region is steady-state.
			perShard := metroStream(b, load, sup, 256)
			for _, stream := range perShard {
				for i := range stream {
					if err := sup.Ingest(stream[i].cell, stream[i].rec); err != nil {
						b.Fatal(err)
					}
				}
			}
			sup.Flush()

			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			share := b.N / sup.Shards()
			for idx, stream := range perShard {
				n := share
				if idx == 0 {
					n = b.N - share*(sup.Shards()-1)
				}
				wg.Add(1)
				go func(stream []item, n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						it := &stream[i%len(stream)]
						if err := sup.Ingest(it.cell, it.rec); err != nil {
							b.Error(err)
							return
						}
					}
				}(stream, n)
			}
			wg.Wait()
			sup.Flush()
			b.StopTimer()

			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rec/s")
			h := sup.Health()
			if h.Dropped != 0 {
				b.Fatalf("Block policy benchmark dropped %d records", h.Dropped)
			}
			if got, want := h.Applied, h.Ingested; got != want {
				b.Fatalf("applied %d records, ingested %d", got, want)
			}
		})
	}
}

// TestMetroSoakFlatHeap drives the supervisor for >= 10x the history
// ring span and asserts the heap stays flat once every series exists —
// the bounded-memory half of the metro acceptance gate. The stream keeps
// advancing TMs (unlike the benchmark's cyclic replay), so ring bins
// recycle continuously.
func TestMetroSoakFlatHeap(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const (
		cells = 20
		ues   = 128
		depth = 16
	)
	binWidth := 10 * time.Millisecond
	load, err := NewMetroLoad(cells, ues, phy.Mu1, 7)
	if err != nil {
		t.Fatal(err)
	}
	sup := New(Config{
		Shards: 2,
		Policy: Block,
		History: history.Config{
			BinWidth: binWidth,
			Depth:    depth,
			MaxUEs:   cells * ues,
		},
		StallTimeout: -1,
	})
	if err := load.Register(sup); err != nil {
		t.Fatal(err)
	}
	if err := sup.Start(); err != nil {
		t.Fatal(err)
	}
	defer sup.Close()

	// Ring spans depth*binWidth of stream time; at Mu1 each slot is
	// 0.5 ms. 10 rings of slots, plus a fifth of that as warm-up.
	ringSlots := int(time.Duration(depth) * binWidth / phy.Mu1.SlotDuration())
	soakSlots := 10 * ringSlots
	warmup := soakSlots / 5

	emit := func(cell uint16, rec telemetry.Record) {
		if err := sup.Ingest(cell, rec); err != nil {
			t.Error(err)
		}
	}
	slot := 0
	for ; slot < warmup; slot++ {
		load.Slot(slot, emit)
	}
	sup.Flush()

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	for ; slot < warmup+soakSlots; slot++ {
		load.Slot(slot, emit)
	}
	sup.Flush()

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	if after.HeapAlloc > before.HeapAlloc {
		growth := after.HeapAlloc - before.HeapAlloc
		if growth > 4<<20 {
			t.Fatalf("heap grew %d bytes over a %d-slot soak (%d ring spans); want flat",
				growth, soakSlots, 10)
		}
	}
	h := sup.Health()
	if h.Dropped != 0 {
		t.Fatalf("soak dropped %d records under Block policy", h.Dropped)
	}
	if h.TrackedUEs == 0 {
		t.Fatal("soak tracked no UE series")
	}
}
