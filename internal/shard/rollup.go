package shard

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"time"

	"nrscope/internal/fusion"
	"nrscope/internal/history"
)

// The cross-shard rollup layer: queries that span the whole deployment
// are answered by fanning out to every shard's partition and merging —
// cheap, because each partition is already bounded and internally
// indexed. The HTTP form mounts next to /metrics:
//
//	GET /shards                          per-shard health + global totals
//	GET /shards/topk?metric=&window=&k=  fused TopK across partitions
//	GET /shards/snapshot                 merged history snapshot
//	GET /shards/handovers                merged handover candidates
//
// ShardHealth is one shard's health and backpressure report.
type ShardHealth struct {
	Shard         int      `json:"shard"`
	Cells         int      `json:"cells"`
	QueueDepth    int      `json:"queue_depth"`
	QueueCapacity int      `json:"queue_capacity"`
	Ingested      int64    `json:"ingested_total"`
	Applied       int64    `json:"applied_total"`
	Dropped       int64    `json:"dropped_total"`
	Rejected      int64    `json:"rejected_total"`
	DecodedSlots  int64    `json:"decoded_slots_total"`
	Restarts      int64    `json:"restarts_total"`
	Stalls        int64    `json:"stalls_total"`
	TrackedUEs    int      `json:"tracked_ues"`
	Up            bool     `json:"up"`
	Dead          bool     `json:"dead"`
	CellIDs       []uint16 `json:"cell_ids,omitempty"`
}

// Rollup is the deployment-wide health roll-up: global gauges plus the
// per-shard reports they sum over.
type Rollup struct {
	Shards       int           `json:"shards"`
	Cells        int           `json:"cells"`
	TrackedUEs   int           `json:"tracked_ues"`
	Ingested     int64         `json:"ingested_total"`
	Applied      int64         `json:"applied_total"`
	Dropped      int64         `json:"dropped_total"`
	DecodedSlots int64         `json:"decoded_slots_total"`
	Restarts     int64         `json:"restarts_total"`
	PerShard     []ShardHealth `json:"per_shard"`
}

// Health reports every shard's state from its local accounting (not the
// process-global obs instruments, which aggregate across supervisors).
func (s *Supervisor) Health() Rollup {
	r := Rollup{Shards: len(s.shards), Cells: len(s.route)}
	for _, sh := range s.shards {
		sh.mu.Lock()
		depth := sh.n
		sh.mu.Unlock()
		h := ShardHealth{
			Shard:         sh.idx,
			Cells:         sh.cells,
			QueueDepth:    depth,
			QueueCapacity: len(sh.buf),
			Ingested:      sh.ingested.Load(),
			Applied:       sh.applied.Load(),
			Dropped:       sh.dropped.Load(),
			Rejected:      sh.rejected.Load(),
			DecodedSlots:  sh.decoded.Load(),
			Restarts:      sh.restarts.Load(),
			Stalls:        sh.stalls.Load(),
			TrackedUEs:    sh.store.TrackedUEs(),
			Up:            sh.workerUp.Load(),
			Dead:          sh.dead.Load(),
			CellIDs:       append([]uint16(nil), sh.cellIDs...),
		}
		r.TrackedUEs += h.TrackedUEs
		r.Ingested += h.Ingested
		r.Applied += h.Applied
		r.Dropped += h.Dropped
		r.DecodedSlots += h.DecodedSlots
		r.Restarts += h.Restarts
		r.PerShard = append(r.PerShard, h)
	}
	return r
}

// TopK fuses every partition's TopK into one deployment-wide ranking.
// Each partition returns its own top k (the global top k is a subset of
// the union); the merge re-sorts and truncates.
func (s *Supervisor) TopK(metric string, window time.Duration, k int) ([]history.UERank, error) {
	var all []history.UERank
	for _, sh := range s.shards {
		ranks, err := sh.store.TopK(metric, window, k)
		if err != nil {
			return nil, err
		}
		all = append(all, ranks...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Value != all[j].Value {
			return all[i].Value > all[j].Value
		}
		if all[i].Cell != all[j].Cell {
			return all[i].Cell < all[j].Cell
		}
		return all[i].RNTI < all[j].RNTI
	})
	if k > 0 && len(all) > k {
		all = all[:k]
	}
	return all, nil
}

// Snapshot merges every partition's history snapshot: cells are
// disjoint across partitions, so the per-cell summaries concatenate and
// the totals sum.
func (s *Supervisor) Snapshot() history.Snapshot {
	var out history.Snapshot
	for i, sh := range s.shards {
		snap := sh.store.Snapshot()
		if i == 0 {
			out.BinMs, out.Depth, out.MaxUEs = snap.BinMs, snap.Depth, snap.MaxUEs
		}
		out.TrackedUEs += snap.TrackedUEs
		out.Anomalies += snap.Anomalies
		if snap.LastMs > out.LastMs {
			out.LastMs = snap.LastMs
		}
		out.Cells = append(out.Cells, snap.Cells...)
	}
	sort.Slice(out.Cells, func(i, j int) bool { return out.Cells[i].Cell < out.Cells[j].Cell })
	return out
}

// Anomalies concatenates every partition's flagged anomaly events.
func (s *Supervisor) Anomalies() []history.Anomaly {
	var out []history.Anomaly
	for _, sh := range s.shards {
		out = append(out, sh.store.Anomalies()...)
	}
	return out
}

// Handovers merges every shard's fusion handover candidates (empty
// without Fusion). Candidates are detected within a shard's cells;
// cross-shard pairs are not matched — cell partitioning trades that for
// failure isolation.
func (s *Supervisor) Handovers() []fusion.Handover {
	var out []fusion.Handover
	for _, sh := range s.shards {
		if sh.agg == nil {
			continue
		}
		sh.applyMu.Lock()
		hos := sh.agg.Handovers()
		sh.applyMu.Unlock()
		out = append(out, hos...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// CarrierAggregation merges every shard's carrier-aggregation
// candidates above minOverlap (empty without Fusion).
func (s *Supervisor) CarrierAggregation(minOverlap float64) []fusion.CACandidate {
	var out []fusion.CACandidate
	for _, sh := range s.shards {
		if sh.agg == nil {
			continue
		}
		sh.applyMu.Lock()
		cas := sh.agg.CarrierAggregation(minOverlap)
		sh.applyMu.Unlock()
		out = append(out, cas...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Overlap > out[j].Overlap })
	return out
}

// Mount registers the /shards/* rollup endpoints on a mux (obs.Server
// or http.ServeMux via the history.Mux interface).
func (s *Supervisor) Mount(m history.Mux) {
	m.Handle("/shards", http.HandlerFunc(s.serveHealth))
	m.Handle("/shards/topk", http.HandlerFunc(s.serveTopK))
	m.Handle("/shards/snapshot", http.HandlerFunc(s.serveSnapshot))
	m.Handle("/shards/handovers", http.HandlerFunc(s.serveHandovers))
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Supervisor) serveHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Health())
}

func (s *Supervisor) serveSnapshot(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Snapshot())
}

func (s *Supervisor) serveHandovers(w http.ResponseWriter, r *http.Request) {
	hos := s.Handovers()
	writeJSON(w, struct {
		Count     int               `json:"count"`
		Handovers []fusion.Handover `json:"handovers"`
	}{len(hos), hos})
}

func (s *Supervisor) serveTopK(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	metric := q.Get("metric")
	if metric == "" {
		metric = "dl_bits"
	}
	window := time.Second
	if v := q.Get("window"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			http.Error(w, "bad window "+strconv.Quote(v), http.StatusBadRequest)
			return
		}
		window = d
	}
	k := 10
	if v := q.Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			http.Error(w, "bad k "+strconv.Quote(v), http.StatusBadRequest)
			return
		}
		k = n
	}
	ranks, err := s.TopK(metric, window, k)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, struct {
		Metric string           `json:"metric"`
		Ranks  []history.UERank `json:"ranks"`
	}{metric, ranks})
}
