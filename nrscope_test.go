package nrscope

import (
	"testing"
	"time"
)

func TestTestbedQuickstartFlow(t *testing.T) {
	tb, err := NewTestbed(AmarisoftPreset, 7)
	if err != nil {
		t.Fatal(err)
	}
	rnti := tb.AttachUE(UEProfile{})
	var discovered bool
	var records int
	tb.RunFor(time.Second, func(res *SlotResult) {
		for _, r := range res.NewUEs {
			if r == rnti {
				discovered = true
			}
		}
		records += len(res.Records)
	})
	if !tb.Scope.CellAcquired() {
		t.Fatal("cell not acquired within 1 s")
	}
	if !discovered {
		t.Fatal("UE not discovered within 1 s")
	}
	if records == 0 {
		t.Fatal("no telemetry records")
	}
	if rate := tb.Scope.Bitrate(rnti, true, tb.GNB.SlotIdx()); rate <= 0 {
		t.Errorf("downlink bitrate estimate %.0f, want > 0", rate)
	}
}

func TestAllPresetsConstruct(t *testing.T) {
	for _, p := range []Preset{SrsRANPreset, MosolabPreset, AmarisoftPreset, TMobile1Preset, TMobile2Preset} {
		tb, err := NewTestbed(p, 3)
		if err != nil {
			t.Fatalf("preset %d: %v", int(p), err)
		}
		if tb.TTI() <= 0 {
			t.Errorf("preset %d: bad TTI", int(p))
		}
	}
	if _, err := NewTestbed(Preset(99), 1); err == nil {
		t.Error("bogus preset accepted")
	}
}

func TestUEProfileMobilityMapping(t *testing.T) {
	for _, m := range []string{"", "static", "awgn", "pedestrian", "vehicle", "moving", "urban", "blocked", "???"} {
		_ = UEProfile{Mobility: m}.model() // must not panic; default applies
	}
}

func TestSessionBoundedUEDeparts(t *testing.T) {
	tb, err := NewTestbed(AmarisoftPreset, 11, WithInactivityTimeout(600))
	if err != nil {
		t.Fatal(err)
	}
	tb.AttachUE(UEProfile{SessionSeconds: 0.5})
	tb.RunFor(2*time.Second, nil)
	if got := len(tb.Scope.DepartedUEs()); got != 1 {
		t.Errorf("departed sessions = %d, want 1", got)
	}
}
